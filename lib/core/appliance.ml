let dns_appliance ?(aslr_seed = 0xd15) () =
  Config.make ~app_name:"dns-appliance"
    ~roots:[ "dns"; "dhcp" ]
    ~bindings:
      [
        Config.static "zone_origin" (Config.String "example.org");
        Config.static "zone_file" (Config.String "/zones/example.org");
        Config.dynamic "ip" (Config.String "dhcp");
      ]
    ~aslr_seed ~app_text_bytes:(6 * 1024) ~app_loc:450 ()

let web_server ?(aslr_seed = 0x3eb) () =
  Config.make ~app_name:"web-server"
    ~roots:[ "http"; "btree"; "json"; "xml"; "css"; "cryptokit"; "fat32" ]
    ~bindings:
      [
        Config.static "port" (Config.Int 80);
        Config.static "ip" (Config.Ip (Netstack.Ipaddr.v4 10 0 0 2));
      ]
    ~aslr_seed ~app_text_bytes:(10 * 1024) ~app_loc:900 ()

let openflow_switch ?(aslr_seed = 0x0f5) () =
  Config.make ~app_name:"openflow-switch"
    ~roots:[ "openflow" ]
    ~bindings:[ Config.static "controller" (Config.Ip (Netstack.Ipaddr.v4 10 0 0 100)) ]
    ~aslr_seed ~app_text_bytes:(7 * 1024) ~app_loc:520 ()

let openflow_controller ?(aslr_seed = 0x0fc) () =
  Config.make ~app_name:"openflow-controller"
    ~roots:[ "openflow" ]
    ~bindings:[ Config.static "listen_port" (Config.Int 6633) ]
    ~aslr_seed ~app_text_bytes:(6 * 1024) ~app_loc:420 ()

let monitor_appliance ?(aslr_seed = 0x0b5) () =
  Config.make ~app_name:"monitor"
    ~roots:[ "http"; "json" ]
    ~bindings:[ Config.static "scrape_interval_ms" (Config.Int 100) ]
    ~aslr_seed ~app_text_bytes:(5 * 1024) ~app_loc:380 ()

let table2 () =
  [
    ("DNS", dns_appliance ());
    ("Web Server", web_server ());
    ("OpenFlow switch", openflow_switch ());
    ("OpenFlow controller", openflow_controller ());
  ]

(* The network attachment is the target's choice (the whole point of the
   functorized stack): the PV split driver + netstack on Xen, a
   copy-taxed tuntap + netstack on Posix_direct, host-kernel sockets on
   Posix_sockets. *)
type net =
  | Direct of { netif : Devices.Netif.t; stack : Netstack.Stack.t }
  | Sockets of Hostnet.t

(* The exposition endpoint instantiated per backend, like every other
   protocol functor — but here rather than in [Apps] because mounting is
   part of bring-up ([Boot_spec.metrics_port]), not application code. *)
module Net_metrics = Uhttp.Metrics_export.Make (Netstack.Device)
module Host_metrics = Uhttp.Metrics_export.Make (Hostnet.Device)

type networked = { unikernel : Unikernel.t; net : net }

let stack n =
  match n.net with Direct d -> d.stack | Sockets h -> Hostnet.kernel_stack h

let netif n = match n.net with Direct d -> d.netif | Sockets h -> Hostnet.netif h
let address n = Netstack.Stack.address (stack n)
let hostnet n = match n.net with Sockets h -> Some h | Direct _ -> None

let boot hv ts (spec : Boot_spec.t) ~main =
  let open Mthread.Promise in
  let sim = hv.Xensim.Hypervisor.sim in
  let result, result_waker = wait () in
  let boot_span = Trace.span ~cat:Trace.Boot "appliance.boot" in
  bind
    (Unikernel.boot hv ts ~mode:spec.Boot_spec.mode ~target:spec.Boot_spec.target
       ~config:spec.Boot_spec.config ~mem_mib:spec.Boot_spec.mem_mib
       ~main:(fun unikernel ->
         let dom = unikernel.Unikernel.domain in
         let nic =
           Netsim.Bridge.new_nic spec.Boot_spec.bridge
             ~mac:(Netsim.mac_of_int (0x1000 + dom.Xensim.Domain.id))
             ()
         in
         let cfg =
           match spec.Boot_spec.ip with
           | Some static -> Netstack.Stack.Static static
           | None -> Netstack.Stack.Dhcp
         in
         let net =
           match spec.Boot_spec.target with
           | Target.Xen_direct ->
             let netif =
               Devices.Netif.connect hv ~dom ~backend_dom:spec.Boot_spec.backend_dom ~nic ()
             in
             bind (Netstack.Stack.create sim ~dom ~netif cfg) (fun stack ->
                 return (Direct { netif; stack }))
           | Target.Posix_direct ->
             let netif = Devices.Netif.connect_direct ~dom ~nic ~frame_tax:true () in
             bind (Netstack.Stack.create sim ~dom ~netif cfg) (fun stack ->
                 return (Direct { netif; stack }))
           | Target.Posix_sockets -> bind (Hostnet.create sim ~dom ~nic cfg) (fun h -> return (Sockets h))
         in
         bind net (fun net ->
             let networked = { unikernel; net } in
             (* One line in the spec makes any appliance scrapable: mount
                the /metrics endpoint on its own stack and advertise it in
                the bridge's service directory for monitor discovery. *)
             (match spec.Boot_spec.metrics_port with
             | None -> ()
             | Some port ->
               (match net with
               | Direct d ->
                 ignore (Net_metrics.mount sim ~dom ~port d.stack)
               | Sockets h ->
                 ignore (Host_metrics.mount sim ~dom ~port h));
               Netsim.Bridge.advertise spec.Boot_spec.bridge
                 ~name:
                   (Printf.sprintf "%s.%d" spec.Boot_spec.config.Config.app_name
                      dom.Xensim.Domain.id)
                 ~ip:(Netstack.Ipaddr.to_string (address networked))
                 ~port);
             Trace.finish boot_span;
             wakeup result_waker networked;
             main networked))
       ())
    (fun _unikernel -> result)
