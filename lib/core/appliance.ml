let dns_appliance ?(aslr_seed = 0xd15) () =
  Config.make ~app_name:"dns-appliance"
    ~roots:[ "dns"; "dhcp" ]
    ~bindings:
      [
        Config.static "zone_origin" (Config.String "example.org");
        Config.static "zone_file" (Config.String "/zones/example.org");
        Config.dynamic "ip" (Config.String "dhcp");
      ]
    ~aslr_seed ~app_text_bytes:(6 * 1024) ~app_loc:450 ()

let web_server ?(aslr_seed = 0x3eb) () =
  Config.make ~app_name:"web-server"
    ~roots:[ "http"; "btree"; "json"; "xml"; "css"; "cryptokit"; "fat32" ]
    ~bindings:
      [
        Config.static "port" (Config.Int 80);
        Config.static "ip" (Config.Ip (Netstack.Ipaddr.v4 10 0 0 2));
      ]
    ~aslr_seed ~app_text_bytes:(10 * 1024) ~app_loc:900 ()

let openflow_switch ?(aslr_seed = 0x0f5) () =
  Config.make ~app_name:"openflow-switch"
    ~roots:[ "openflow" ]
    ~bindings:[ Config.static "controller" (Config.Ip (Netstack.Ipaddr.v4 10 0 0 100)) ]
    ~aslr_seed ~app_text_bytes:(7 * 1024) ~app_loc:520 ()

let openflow_controller ?(aslr_seed = 0x0fc) () =
  Config.make ~app_name:"openflow-controller"
    ~roots:[ "openflow" ]
    ~bindings:[ Config.static "listen_port" (Config.Int 6633) ]
    ~aslr_seed ~app_text_bytes:(6 * 1024) ~app_loc:420 ()

let monitor_appliance ?(aslr_seed = 0x0b5) () =
  Config.make ~app_name:"monitor"
    ~roots:[ "http"; "json" ]
    ~bindings:[ Config.static "scrape_interval_ms" (Config.Int 100) ]
    ~aslr_seed ~app_text_bytes:(5 * 1024) ~app_loc:380 ()

let lb_appliance ?(aslr_seed = 0x1b0) () =
  Config.make ~app_name:"lb"
    ~roots:[ "http"; "json" ]
    ~bindings:[ Config.static "listen_port" (Config.Int 80) ]
    ~aslr_seed ~app_text_bytes:(4 * 1024) ~app_loc:320 ()

let table2 () =
  [
    ("DNS", dns_appliance ());
    ("Web Server", web_server ());
    ("OpenFlow switch", openflow_switch ());
    ("OpenFlow controller", openflow_controller ());
  ]

(* The network attachment is the target's choice (the whole point of the
   functorized stack): the PV split driver + netstack on Xen, a
   copy-taxed tuntap + netstack on Posix_direct, host-kernel sockets on
   Posix_sockets. *)
type net =
  | Direct of { netif : Devices.Netif.t; stack : Netstack.Stack.t }
  | Sockets of Hostnet.t

(* The exposition endpoint instantiated per backend, like every other
   protocol functor — but here rather than in [Apps] because mounting is
   part of bring-up ([Boot_spec.metrics_port]), not application code. *)
module Net_metrics = Uhttp.Metrics_export.Make (Netstack.Device)
module Host_metrics = Uhttp.Metrics_export.Make (Hostnet.Device)

type networked = { unikernel : Unikernel.t; net : net }

let stack n =
  match n.net with Direct d -> d.stack | Sockets h -> Hostnet.kernel_stack h

let netif n = match n.net with Direct d -> d.netif | Sockets h -> Hostnet.netif h
let address n = Netstack.Stack.address (stack n)
let hostnet n = match n.net with Sockets h -> Some h | Direct _ -> None

(* ---- lifecycle handles ----

   [start] hands back a first-class handle instead of the bare network
   plumbing: the paper's elasticity story needs domains that can be
   retired as cheaply as they boot, and a promise of a [networked] gives
   no way to stop one. The handle owns the teardown path — immediate
   [shutdown] or graceful [drain] — and undoes at death everything boot
   did: service-directory advertisements are withdrawn and the vif leaves
   the bridge, so monitors stop scraping the corpse and health checks
   fail fast. *)

module Handle = struct
  type status = Running | Draining | Stopped

  let status_name = function Running -> "running" | Draining -> "draining" | Stopped -> "stopped"

  type t = {
    h_networked : networked;
    h_hv : Xensim.Hypervisor.t;
    h_spec : Boot_spec.t;
    mutable h_status : status;
    mutable h_drain_hooks : (unit -> unit Mthread.Promise.t) list;
    mutable h_ads : string list;  (* service-directory names to withdraw at death *)
    h_stopped : unit Mthread.Promise.t;
    h_stopped_w : unit Mthread.Promise.u;
  }

  let networked t = t.h_networked
  let unikernel t = t.h_networked.unikernel
  let domain t = t.h_networked.unikernel.Unikernel.domain
  let status t = t.h_status
  let stack t = stack t.h_networked
  let netif t = netif t.h_networked
  let address t = address t.h_networked
  let hostnet t = hostnet t.h_networked
  let name t = t.h_spec.Boot_spec.config.Config.app_name
  let spec t = t.h_spec
  let stopped t = t.h_stopped
  let on_drain t f = t.h_drain_hooks <- f :: t.h_drain_hooks
  let add_advertisement t ad = t.h_ads <- ad :: t.h_ads

  let emit_lifecycle t what =
    if Trace.enabled () then
      Trace.emit
        ~dom:(domain t).Xensim.Domain.id
        ~payload:[ ("appliance", Trace.String (name t)) ]
        ~cat:Trace.Boot what

  (* Immediate stop: withdraw every advertisement, unplug the vif (frames
     in flight vanish, exactly as for a destroyed domain), and tear the
     domain down with exit code 0. Idempotent. *)
  let shutdown t =
    (match t.h_status with
    | Stopped -> ()
    | Running | Draining ->
      t.h_status <- Stopped;
      List.iter (fun ad -> Netsim.Bridge.withdraw t.h_spec.Boot_spec.bridge ~name:ad) t.h_ads;
      Netsim.Bridge.detach t.h_spec.Boot_spec.bridge (Devices.Netif.nic (netif t));
      Devices.Netif.disconnect (netif t);
      emit_lifecycle t "appliance.shutdown";
      Xensim.Hypervisor.destroy ~exit_code:0 t.h_hv (domain t);
      Mthread.Promise.wakeup t.h_stopped_w ());
    Mthread.Promise.return ()

  (* Graceful stop: leave the directory at once (no new discovery), ask
     every registered server to drain — stop accepting, finish requests
     in flight byte-identically — and only then shut the domain down.
     Idempotent; a second call (or a call racing [shutdown]) just waits
     for the stop. *)
  let drain t =
    match t.h_status with
    | Stopped -> Mthread.Promise.return ()
    | Draining -> t.h_stopped
    | Running ->
      t.h_status <- Draining;
      List.iter (fun ad -> Netsim.Bridge.withdraw t.h_spec.Boot_spec.bridge ~name:ad) t.h_ads;
      emit_lifecycle t "appliance.drain";
      let hooks = List.rev t.h_drain_hooks in
      Mthread.Promise.bind
        (Mthread.Promise.join (List.map (fun f -> f ()) hooks))
        (fun () -> shutdown t)
end

let start hv ts (spec : Boot_spec.t) ~main =
  let open Mthread.Promise in
  let sim = hv.Xensim.Hypervisor.sim in
  let result, result_waker = wait () in
  let boot_span = Trace.span ~cat:Trace.Boot "appliance.boot" in
  bind
    (Unikernel.boot hv ts ~mode:spec.Boot_spec.mode ~target:spec.Boot_spec.target
       ~config:spec.Boot_spec.config ~mem_mib:spec.Boot_spec.mem_mib
       ~main:(fun unikernel ->
         let dom = unikernel.Unikernel.domain in
         let nic =
           Netsim.Bridge.new_nic spec.Boot_spec.bridge
             ~mac:(Netsim.mac_of_int (0x1000 + dom.Xensim.Domain.id))
             ()
         in
         let cfg =
           match spec.Boot_spec.ip with
           | Some static -> Netstack.Stack.Static static
           | None -> Netstack.Stack.Dhcp
         in
         let announce = not spec.Boot_spec.quiet_net in
         let net =
           match spec.Boot_spec.target with
           | Target.Xen_direct ->
             let netif =
               Devices.Netif.connect hv ~dom ~backend_dom:spec.Boot_spec.backend_dom ~nic
                 ~rx_slots:spec.Boot_spec.rx_slots ()
             in
             bind (Netstack.Stack.create sim ~dom ~announce ~netif cfg) (fun stack ->
                 return (Direct { netif; stack }))
           | Target.Posix_direct ->
             let netif = Devices.Netif.connect_direct ~dom ~nic ~frame_tax:true () in
             bind (Netstack.Stack.create sim ~dom ~announce ~netif cfg) (fun stack ->
                 return (Direct { netif; stack }))
           | Target.Posix_sockets -> bind (Hostnet.create sim ~dom ~nic cfg) (fun h -> return (Sockets h))
         in
         bind net (fun net ->
             let networked = { unikernel; net } in
             let stopped, stopped_w = wait () in
             let handle =
               {
                 Handle.h_networked = networked;
                 h_hv = hv;
                 h_spec = spec;
                 h_status = Handle.Running;
                 h_drain_hooks = [];
                 h_ads = [];
                 h_stopped = stopped;
                 h_stopped_w = stopped_w;
               }
             in
             (* One line in the spec makes any appliance scrapable: mount
                the /metrics endpoint on its own stack and advertise it in
                the bridge's service directory for monitor discovery. The
                advertisement is recorded on the handle so shutdown
                withdraws it. *)
             (match spec.Boot_spec.metrics_port with
             | None -> ()
             | Some port ->
               (match net with
               | Direct d ->
                 ignore (Net_metrics.mount sim ~dom ~port d.stack)
               | Sockets h ->
                 ignore (Host_metrics.mount sim ~dom ~port h));
               let ad =
                 Printf.sprintf "%s.%d" spec.Boot_spec.config.Config.app_name
                   dom.Xensim.Domain.id
               in
               Handle.add_advertisement handle ad;
               Netsim.Bridge.advertise spec.Boot_spec.bridge ~name:ad
                 ~ip:(Netstack.Ipaddr.to_string (address networked))
                 ~port);
             Trace.finish boot_span;
             wakeup result_waker handle;
             main handle))
       ())
    (fun _unikernel -> result)

(* Deprecated thin wrapper (one release, mirroring the boot_networked
   precedent): projects the handle away for callers that only ever wanted
   the network plumbing. *)
let boot hv ts spec ~main =
  Mthread.Promise.bind
    (start hv ts spec ~main:(fun h -> main (Handle.networked h)))
    (fun h -> Mthread.Promise.return (Handle.networked h))
