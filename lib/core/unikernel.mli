(** The unikernel build-and-boot pipeline — the paper's Figure 1 right-hand
    column: configuration + application source + libraries, whole-system
    specialised into a sealed single-address-space VM.

    Pipeline: {!Specialize.plan} (dependency resolution + DCE) →
    {!Specialize.verify} (static check that only requested services link) →
    {!Linker.link} (compile-time ASR) → toolstack domain build → memory
    layout install → seal hypercall → application main thread. The VM
    shuts down when main returns, its exit code the thread's return
    (paper §3.3). *)

(** The three specialisation steps of the paper's developer workflow
    (§5.4): debug as an ordinary process with host sockets, then swap in
    the unikernel network stack over tuntap, then cross-compile to the
    sealed Xen image. An alias of {!Target.t}; each target selects both
    the library closure ({!Specialize}) and the device backend the
    application functors are instantiated with ({!Apps}/{!Appliance}). *)
type target = Target.t =
  | Posix_sockets  (** host kernel networking; bytecode-friendly; no seal *)
  | Posix_direct  (** unikernel stack via tuntap (copy-taxed); no seal *)
  | Xen_direct  (** standalone sealed VM on the hypervisor *)

type t = {
  domain : Xensim.Domain.t;
  image : Linker.image;
  plan : Specialize.plan;
  config : Config.t;
  sealed : bool;  (** false on an unpatched hypervisor (§2.3.3) *)
  ready_at_ns : int;  (** boot-complete instant *)
  target : target;
}

exception Build_error of string

(** Boot-time profile of a Mirage image (Figures 5/6: tens of ms,
    near-flat in memory size). *)
val mirage_profile : image_bytes:int -> Xensim.Toolstack.profile

(** [boot hv ts ~config ~mem_mib ~main ()] runs the full pipeline.
    [main] returns the VM exit code. Defaults: [`Async] toolstack,
    [Ocamlclean] DCE, sealing requested. *)
val boot :
  Xensim.Hypervisor.t ->
  Xensim.Toolstack.t ->
  ?mode:[ `Sync | `Async ] ->
  ?dce:Specialize.dce ->
  ?seal:bool ->
  ?platform:Platform.t ->
  ?target:target ->
  config:Config.t ->
  mem_mib:int ->
  main:(t -> int Mthread.Promise.t) ->
  unit ->
  t Mthread.Promise.t

(** Exit code once the main thread has returned. *)
val exit_code : t -> int option

(** Host libc bytes a POSIX-target image drags in (the unikernel links
    none). *)
val posix_libc_bytes : int

(** Estimated time from "run it" to ready, per target: toolstack domain
    build + guest init for [Xen_direct], a process spawn for the POSIX
    targets. Used by the build report's per-target delta table. *)
val boot_estimate_ns : target:target -> mem_mib:int -> image_bytes:int -> int
