(** Compile-time specialisation (paper §2.2, §2.3.1, §4.5, Table 2).

    [Standard] linking already performs module-level dead-code elimination:
    only the dependency closure of the configuration's roots is linked, so
    an appliance that uses no filesystem carries no block drivers.
    [Ocamlclean] additionally performs function-level dataflow elimination
    within each linked library — safe because unikernels never dynamically
    link.

    The closure is computed per {!Target}: the deploy target ([Xen_direct],
    the default — Table 2's numbers) links the unikernel facilities, while
    the POSIX developer targets rewrite protocol and device libraries to
    host shims or drop them (the kernel provides the service), so image
    sizes are target-dependent exactly as §5.4 describes. *)

type dce = Standard | Ocamlclean

type plan = {
  config : Config.t;
  target : Target.t;
  dce : dce;
  libs : Library_registry.lib list;  (** dependency order *)
  text_bytes : int;
  data_bytes : int;
  total_bytes : int;
  total_loc : int;
}

val plan : ?target:Target.t -> Config.t -> dce -> plan

(** The static verification of §2.3.1, now target-aware: the plan links
    nothing its target forbids (a [Posix_sockets] plan must not contain
    the netstack; a sealed [Xen_direct] image no host shims), is
    dependency-closed under the target's rewrite, and contains nothing
    outside the closure of the requested roots. *)
val verify : plan -> (unit, string) result

val contains : plan -> string -> bool

(** Libraries in the registry that specialisation dropped. *)
val elided : plan -> string list
