type lib = {
  lib_name : string;
  subsystem : string;
  loc : int;
  text_bytes : int;
  data_bytes : int;
  unused_fraction : float;
  deps : string list;
}

exception Unknown_library of string

let kb n = n * 1024

(* Sizes are calibrated so the four appliance images of Table 2 come out
   at the paper's figures (DNS 449->184 kB, web 673->172 kB, OpenFlow
   switch 393->164 kB, controller 392->168 kB). [unused_fraction] models
   what ocamlclean's dataflow pass strips from each library when linked
   into a typical appliance. *)
let registry =
  [
    (* Core *)
    { lib_name = "runtime"; subsystem = "Core"; loc = 44_000; text_bytes = kb 186; data_bytes = kb 10; unused_fraction = 0.77; deps = [] };
    { lib_name = "pvboot"; subsystem = "Core"; loc = 2_900; text_bytes = kb 16; data_bytes = kb 1; unused_fraction = 0.3; deps = [] };
    { lib_name = "lwt"; subsystem = "Core"; loc = 6_400; text_bytes = kb 24; data_bytes = kb 1; unused_fraction = 0.65; deps = [ "runtime" ] };
    { lib_name = "cstruct"; subsystem = "Core"; loc = 1_800; text_bytes = kb 12; data_bytes = kb 1; unused_fraction = 0.5; deps = [ "runtime" ] };
    { lib_name = "regexp"; subsystem = "Core"; loc = 2_400; text_bytes = kb 20; data_bytes = kb 1; unused_fraction = 0.9; deps = [ "runtime" ] };
    { lib_name = "utf8"; subsystem = "Core"; loc = 1_100; text_bytes = kb 12; data_bytes = kb 2; unused_fraction = 0.9; deps = [ "runtime" ] };
    { lib_name = "cryptokit"; subsystem = "Core"; loc = 7_800; text_bytes = kb 96; data_bytes = kb 6; unused_fraction = 0.98; deps = [ "runtime" ] };
    (* Xen device drivers *)
    { lib_name = "ring"; subsystem = "Core"; loc = 900; text_bytes = kb 9; data_bytes = kb 1; unused_fraction = 0.3; deps = [ "pvboot"; "cstruct" ] };
    { lib_name = "netif"; subsystem = "Network"; loc = 1_600; text_bytes = kb 11; data_bytes = kb 1; unused_fraction = 0.35; deps = [ "ring"; "lwt" ] };
    { lib_name = "blkif"; subsystem = "Storage"; loc = 1_400; text_bytes = kb 11; data_bytes = kb 1; unused_fraction = 0.7; deps = [ "ring"; "lwt" ] };
    (* Network *)
    { lib_name = "ethernet"; subsystem = "Network"; loc = 700; text_bytes = kb 7; data_bytes = kb 1; unused_fraction = 0.35; deps = [ "netif" ] };
    { lib_name = "arp"; subsystem = "Network"; loc = 800; text_bytes = kb 5; data_bytes = kb 1; unused_fraction = 0.35; deps = [ "ethernet" ] };
    { lib_name = "ipv4"; subsystem = "Network"; loc = 1_900; text_bytes = kb 13; data_bytes = kb 1; unused_fraction = 0.45; deps = [ "ethernet"; "arp" ] };
    { lib_name = "icmp"; subsystem = "Network"; loc = 600; text_bytes = kb 5; data_bytes = kb 1; unused_fraction = 0.5; deps = [ "ipv4" ] };
    { lib_name = "udp"; subsystem = "Network"; loc = 900; text_bytes = kb 7; data_bytes = kb 1; unused_fraction = 0.4; deps = [ "ipv4" ] };
    { lib_name = "tcp"; subsystem = "Network"; loc = 5_400; text_bytes = kb 45; data_bytes = kb 1; unused_fraction = 0.82; deps = [ "ipv4" ] };
    { lib_name = "dhcp"; subsystem = "Network"; loc = 1_300; text_bytes = kb 11; data_bytes = kb 1; unused_fraction = 0.65; deps = [ "udp" ] };
    { lib_name = "openflow"; subsystem = "Network"; loc = 5_900; text_bytes = kb 32; data_bytes = kb 2; unused_fraction = 0.08; deps = [ "tcp" ] };
    (* Storage *)
    { lib_name = "kv"; subsystem = "Storage"; loc = 1_000; text_bytes = kb 7; data_bytes = kb 1; unused_fraction = 0.5; deps = [ "lwt" ] };
    { lib_name = "fat32"; subsystem = "Storage"; loc = 2_800; text_bytes = kb 20; data_bytes = kb 1; unused_fraction = 0.9; deps = [ "blkif" ] };
    { lib_name = "btree"; subsystem = "Storage"; loc = 2_400; text_bytes = kb 16; data_bytes = kb 1; unused_fraction = 0.8; deps = [ "blkif" ] };
    { lib_name = "memcache"; subsystem = "Storage"; loc = 1_200; text_bytes = kb 9; data_bytes = kb 1; unused_fraction = 0.6; deps = [ "tcp"; "kv" ] };
    (* Application *)
    { lib_name = "dns"; subsystem = "Application"; loc = 4_100; text_bytes = kb 71; data_bytes = kb 2; unused_fraction = 0.53; deps = [ "udp"; "kv"; "regexp"; "utf8" ] };
    { lib_name = "ssh"; subsystem = "Application"; loc = 6_300; text_bytes = kb 48; data_bytes = kb 2; unused_fraction = 0.8; deps = [ "tcp"; "cryptokit" ] };
    { lib_name = "http"; subsystem = "Application"; loc = 3_800; text_bytes = kb 80; data_bytes = kb 2; unused_fraction = 0.93; deps = [ "tcp"; "regexp"; "utf8" ] };
    { lib_name = "xmpp"; subsystem = "Application"; loc = 3_100; text_bytes = kb 24; data_bytes = kb 1; unused_fraction = 0.8; deps = [ "tcp"; "xml" ] };
    { lib_name = "smtp"; subsystem = "Application"; loc = 1_700; text_bytes = kb 13; data_bytes = kb 1; unused_fraction = 0.8; deps = [ "tcp" ] };
    (* Formats *)
    { lib_name = "json"; subsystem = "Formats"; loc = 1_500; text_bytes = kb 14; data_bytes = kb 1; unused_fraction = 0.9; deps = [ "utf8" ] };
    { lib_name = "xml"; subsystem = "Formats"; loc = 2_300; text_bytes = kb 18; data_bytes = kb 1; unused_fraction = 0.92; deps = [ "utf8" ] };
    { lib_name = "css"; subsystem = "Formats"; loc = 1_400; text_bytes = kb 12; data_bytes = kb 1; unused_fraction = 0.92; deps = [ "utf8" ] };
    { lib_name = "sexp"; subsystem = "Formats"; loc = 900; text_bytes = kb 8; data_bytes = kb 1; unused_fraction = 0.7; deps = [ "runtime" ] };
  ]

(* Host shims linked instead of unikernel facilities on the POSIX
   developer targets (§5.4): thin bindings over kernel services, not
   Mirage libraries — kept out of [all]/[by_subsystem] so Table 1 stays
   the paper's table. They enter a plan only through a target's
   dependency rewrite in [Specialize]. *)
let host_registry =
  [
    { lib_name = "hostsock"; subsystem = "Host"; loc = 600; text_bytes = kb 5; data_bytes = kb 1; unused_fraction = 0.3; deps = [ "runtime"; "lwt" ] };
    { lib_name = "tuntap"; subsystem = "Host"; loc = 500; text_bytes = kb 4; data_bytes = kb 1; unused_fraction = 0.3; deps = [ "runtime"; "lwt" ] };
    { lib_name = "hostfile"; subsystem = "Host"; loc = 400; text_bytes = kb 4; data_bytes = kb 1; unused_fraction = 0.3; deps = [ "runtime"; "lwt" ] };
  ]

let table = Hashtbl.create 64

let () = List.iter (fun l -> Hashtbl.replace table l.lib_name l) (registry @ host_registry)

let all () = registry

let find name =
  match Hashtbl.find_opt table name with
  | Some l -> l
  | None -> raise (Unknown_library name)

let mem name = Hashtbl.mem table name

let dependency_closure ?rewrite roots =
  let rewrite = match rewrite with Some f -> f | None -> fun n -> Some n in
  let seen = Hashtbl.create 32 in
  let order = ref [] in
  let rec visit name =
    match rewrite name with
    | None -> ()
    | Some name ->
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.replace seen name ();
        let l = find name in
        List.iter visit l.deps;
        order := l :: !order
      end
  in
  List.iter visit roots;
  List.rev !order

let by_subsystem () =
  let subsystems = [ "Core"; "Network"; "Storage"; "Application"; "Formats" ] in
  List.map
    (fun s ->
      (s, List.filter_map (fun l -> if l.subsystem = s then Some l.lib_name else None) registry))
    subsystems

let dependants name =
  ignore (find name);
  List.filter_map
    (fun l -> if List.mem name l.deps then Some l.lib_name else None)
    registry
