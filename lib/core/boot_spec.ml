type t = {
  backend_dom : Xensim.Domain.t;
  bridge : Netsim.Bridge.t;
  config : Config.t;
  mode : [ `Sync | `Async ];
  mem_mib : int;
  ip : Netstack.Ipv4.config option;
  target : Target.t;
}

let make ~backend_dom ~bridge ~config ?(mode = `Async) ?(mem_mib = 32) ?ip
    ?(target = Target.Xen_direct) () =
  if mem_mib <= 0 then invalid_arg "Boot_spec.make: mem_mib must be positive";
  { backend_dom; bridge; config; mode; mem_mib; ip; target }
