type t = {
  backend_dom : Xensim.Domain.t;
  bridge : Netsim.Bridge.t;
  config : Config.t;
  mode : [ `Sync | `Async ];
  mem_mib : int;
  ip : Netstack.Ipv4.config option;
  target : Target.t;
  metrics_port : int option;
      (* when set, the appliance mounts a /metrics exposition endpoint on
         this port and advertises it in the bridge's service directory *)
}

let make ~backend_dom ~bridge ~config ?(mode = `Async) ?(mem_mib = 32) ?ip
    ?(target = Target.Xen_direct) ?metrics_port () =
  if mem_mib <= 0 then invalid_arg "Boot_spec.make: mem_mib must be positive";
  { backend_dom; bridge; config; mode; mem_mib; ip; target; metrics_port }
