type t = {
  backend_dom : Xensim.Domain.t;
  bridge : Netsim.Bridge.t;
  config : Config.t;
  mode : [ `Sync | `Async ];
  mem_mib : int;
  ip : Netstack.Ipv4.config option;
  target : Target.t;
  metrics_port : int option;
      (* when set, the appliance mounts a /metrics exposition endpoint on
         this port and advertises it in the bridge's service directory *)
  quiet_net : bool;
      (* suppress the gratuitous ARP broadcast at stack bring-up — boot
         storms pre-seed ARP instead of announcing to 10⁴ ports *)
  rx_slots : int;
      (* receive credit the vif posts on its ring (netfront negotiates
         ring size); smaller rings keep 10⁴-vif storms cheap *)
}

let make ~backend_dom ~bridge ~config ?(mode = `Async) ?(mem_mib = 32) ?ip
    ?(target = Target.Xen_direct) ?metrics_port ?(quiet_net = false) ?(rx_slots = 512) () =
  if mem_mib <= 0 then invalid_arg "Boot_spec.make: mem_mib must be positive";
  if rx_slots < 1 then invalid_arg "Boot_spec.make: rx_slots must be positive";
  { backend_dom; bridge; config; mode; mem_mib; ip; target; metrics_port; quiet_net; rx_slots }

(* Stamp out replica N+1 from a template: same library configuration and
   placement, fresh identity. The ASR seed is re-derived from the replica
   name so every clone links a differently-randomised image (each
   deployment gets its own layout, §2.3.4) while staying deterministic
   for a deterministic name sequence. *)
let clone t ~name ?ip ?aslr_seed () =
  let aslr_seed =
    match aslr_seed with
    | Some s -> s
    | None -> (t.config.Config.aslr_seed + Hashtbl.hash name) land 0xffffff
  in
  let config = { t.config with Config.app_name = name; aslr_seed } in
  { t with config; ip = (match ip with Some _ -> ip | None -> t.ip) }
