(* The three compilation targets of the progressive developer workflow
   (paper §5.4, Fig. 13): the same application functors, three device
   configurations. *)

type t =
  | Posix_sockets  (* host process, kernel sockets (step 1) *)
  | Posix_direct  (* host process, unikernel netstack on tuntap (step 2) *)
  | Xen_direct  (* sealed unikernel, netstack on the PV ring (step 3) *)

let to_string = function
  | Posix_sockets -> "posix-sockets"
  | Posix_direct -> "posix-direct"
  | Xen_direct -> "xen-direct"

let of_string = function
  | "posix-sockets" -> Some Posix_sockets
  | "posix-direct" -> Some Posix_direct
  | "xen-direct" | "xen" -> Some Xen_direct
  | _ -> None

let all = [ Posix_sockets; Posix_direct; Xen_direct ]
