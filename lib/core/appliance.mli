(** The four appliances of the paper's evaluation (Table 2, Figure 14),
    as configurations over the library registry, plus a helper that boots
    an appliance with a network interface attached. *)

(** DNS server: UDP stack + DHCP + in-memory zone store (paper §4.2). *)
val dns_appliance : ?aslr_seed:int -> unit -> Config.t

(** Dynamic web server: HTTP + B-tree store + formats (paper §4.4). *)
val web_server : ?aslr_seed:int -> unit -> Config.t

val openflow_switch : ?aslr_seed:int -> unit -> Config.t
val openflow_controller : ?aslr_seed:int -> unit -> Config.t

(** The scraper unikernel of the monitoring plane (HTTP client + series
    store); not part of Table 2. *)
val monitor_appliance : ?aslr_seed:int -> unit -> Config.t

(** All four, in Table 2 order, with their display names. *)
val table2 : unit -> (string * Config.t) list

(** The target-selected network attachment of a booted appliance:
    netstack over a device ([Xen_direct]'s PV ring or [Posix_direct]'s
    tuntap), or host-kernel sockets ([Posix_sockets]). *)
type net =
  | Direct of { netif : Devices.Netif.t; stack : Netstack.Stack.t }
  | Sockets of Hostnet.t

(** A booted appliance with its network plumbing. *)
type networked = { unikernel : Unikernel.t; net : net }

(** The netstack instance: the appliance's own on the direct targets,
    the modelled host kernel's beneath [Sockets]. *)
val stack : networked -> Netstack.Stack.t

val netif : networked -> Devices.Netif.t
val address : networked -> Netstack.Ipaddr.t

(** The socket layer when the appliance runs on [Posix_sockets]. *)
val hostnet : networked -> Hostnet.t option

(** [boot hv ts spec ~main] boots the unikernel described by [spec],
    attaches a NIC on its bridge, brings up the target's network backend
    (static address or DHCP per [spec.ip]) and runs [main] once the
    network is ready. The returned promise resolves as soon as the stack
    is up; [main] keeps running in the appliance. Emits an
    [appliance.boot] trace span. *)
val boot :
  Xensim.Hypervisor.t ->
  Xensim.Toolstack.t ->
  Boot_spec.t ->
  main:(networked -> int Mthread.Promise.t) ->
  networked Mthread.Promise.t
