(** The four appliances of the paper's evaluation (Table 2, Figure 14),
    as configurations over the library registry, plus a helper that boots
    an appliance with a network interface attached. *)

(** DNS server: UDP stack + DHCP + in-memory zone store (paper §4.2). *)
val dns_appliance : ?aslr_seed:int -> unit -> Config.t

(** Dynamic web server: HTTP + B-tree store + formats (paper §4.4). *)
val web_server : ?aslr_seed:int -> unit -> Config.t

val openflow_switch : ?aslr_seed:int -> unit -> Config.t
val openflow_controller : ?aslr_seed:int -> unit -> Config.t

(** The scraper unikernel of the monitoring plane (HTTP client + series
    store); not part of Table 2. *)
val monitor_appliance : ?aslr_seed:int -> unit -> Config.t

(** The L4 load-balancer unikernel of the fleet plane (forwarder + HTTP
    client for health checks); not part of Table 2. *)
val lb_appliance : ?aslr_seed:int -> unit -> Config.t

(** All four, in Table 2 order, with their display names. *)
val table2 : unit -> (string * Config.t) list

(** The target-selected network attachment of a booted appliance:
    netstack over a device ([Xen_direct]'s PV ring or [Posix_direct]'s
    tuntap), or host-kernel sockets ([Posix_sockets]). *)
type net =
  | Direct of { netif : Devices.Netif.t; stack : Netstack.Stack.t }
  | Sockets of Hostnet.t

(** A booted appliance with its network plumbing. *)
type networked = { unikernel : Unikernel.t; net : net }

(** The netstack instance: the appliance's own on the direct targets,
    the modelled host kernel's beneath [Sockets]. *)
val stack : networked -> Netstack.Stack.t

val netif : networked -> Devices.Netif.t
val address : networked -> Netstack.Ipaddr.t

(** The socket layer when the appliance runs on [Posix_sockets]. *)
val hostnet : networked -> Hostnet.t option

(** A running appliance as a first-class value: the network plumbing plus
    the lifecycle. Fleet control (the orchestrator's scale-in path, test
    teardown) needs domains that can be retired as cheaply as they boot;
    the handle owns that teardown and undoes at death everything boot did
    — advertisements withdrawn from the service directory, vif detached
    from the bridge, domain destroyed. *)
module Handle : sig
  type t

  type status =
    | Running
    | Draining  (** no longer accepting work; finishing requests in flight *)
    | Stopped

  val status : t -> status
  val status_name : status -> string

  (** The network plumbing, as [boot] used to return it. *)
  val networked : t -> networked

  val unikernel : t -> Unikernel.t
  val domain : t -> Xensim.Domain.t
  val stack : t -> Netstack.Stack.t
  val netif : t -> Devices.Netif.t
  val address : t -> Netstack.Ipaddr.t
  val hostnet : t -> Hostnet.t option

  (** The appliance name from the spec's config. *)
  val name : t -> string

  val spec : t -> Boot_spec.t

  (** Resolves once the appliance reaches [Stopped]. Appliance mains that
      should live exactly as long as the domain return this. *)
  val stopped : t -> unit Mthread.Promise.t

  (** Register a graceful-stop hook, typically a server's [drain]
      ([Uhttp.Server], [Dns.Server]). All hooks run concurrently when
      {!drain} is called; {!shutdown} skips them. *)
  val on_drain : t -> (unit -> unit Mthread.Promise.t) -> unit

  (** Record an extra service-directory advertisement to withdraw at
      death (the /metrics advertisement from [Boot_spec.metrics_port] is
      recorded automatically). *)
  val add_advertisement : t -> string -> unit

  (** Immediate stop: withdraw advertisements, detach the vif (frames in
      flight vanish), destroy the domain with exit code 0. Idempotent. *)
  val shutdown : t -> unit Mthread.Promise.t

  (** Graceful stop: withdraw advertisements at once (no new discovery),
      run every {!on_drain} hook — stop accepting, finish requests in
      flight byte-identically — then {!shutdown}. Resolves when the
      appliance is [Stopped]. Idempotent. *)
  val drain : t -> unit Mthread.Promise.t
end

(** [start hv ts spec ~main] boots the unikernel described by [spec],
    attaches a NIC on its bridge, brings up the target's network backend
    (static address or DHCP per [spec.ip]) and runs [main] once the
    network is ready. The returned promise resolves with the lifecycle
    handle as soon as the stack is up; [main] keeps running in the
    appliance (mains that should live until retirement end with
    [Handle.stopped]). Emits an [appliance.boot] trace span. *)
val start :
  Xensim.Hypervisor.t ->
  Xensim.Toolstack.t ->
  Boot_spec.t ->
  main:(Handle.t -> int Mthread.Promise.t) ->
  Handle.t Mthread.Promise.t

val boot :
  Xensim.Hypervisor.t ->
  Xensim.Toolstack.t ->
  Boot_spec.t ->
  main:(networked -> int Mthread.Promise.t) ->
  networked Mthread.Promise.t
[@@ocaml.deprecated "use Appliance.start, which returns a lifecycle Handle"]
