(** The four appliances of the paper's evaluation (Table 2, Figure 14),
    as configurations over the library registry, plus a helper that boots
    an appliance with a network interface attached. *)

(** DNS server: UDP stack + DHCP + in-memory zone store (paper §4.2). *)
val dns_appliance : ?aslr_seed:int -> unit -> Config.t

(** Dynamic web server: HTTP + B-tree store + formats (paper §4.4). *)
val web_server : ?aslr_seed:int -> unit -> Config.t

val openflow_switch : ?aslr_seed:int -> unit -> Config.t
val openflow_controller : ?aslr_seed:int -> unit -> Config.t

(** All four, in Table 2 order, with their display names. *)
val table2 : unit -> (string * Config.t) list

(** A booted appliance with its network plumbing. *)
type networked = {
  unikernel : Unikernel.t;
  netif : Devices.Netif.t;
  stack : Netstack.Stack.t;
}

(** [boot hv ts spec ~main] boots the unikernel described by [spec],
    attaches a NIC on its bridge, brings up the stack (static address or
    DHCP per [spec.ip]) and runs [main] once the network is ready. The
    returned promise resolves as soon as the stack is up; [main] keeps
    running in the appliance. Emits an [appliance.boot] trace span. *)
val boot :
  Xensim.Hypervisor.t ->
  Xensim.Toolstack.t ->
  Boot_spec.t ->
  main:(networked -> int Mthread.Promise.t) ->
  networked Mthread.Promise.t

(** Legacy argument-list interface, kept for one release. *)
val boot_networked :
  Xensim.Hypervisor.t ->
  Xensim.Toolstack.t ->
  backend_dom:Xensim.Domain.t ->
  bridge:Netsim.Bridge.t ->
  config:Config.t ->
  ?mode:[ `Sync | `Async ] ->
  ?mem_mib:int ->
  ?ip:Netstack.Ipv4.config ->
  main:(networked -> int Mthread.Promise.t) ->
  unit ->
  networked Mthread.Promise.t
[@@ocaml.deprecated "Build a Boot_spec.t with Boot_spec.make and call Appliance.boot instead."]
