(** The Mirage library universe (paper Table 1): every system facility is
    a library with explicit dependencies, code size and binary footprint.
    Specialisation (dead-code elimination, Table 2) is computed over this
    registry: only the dependency closure of a configuration's roots is
    linked, and function-level cleaning shrinks each library by its
    measured unused fraction. *)

type lib = {
  lib_name : string;
  subsystem : string;  (** Table 1 row: Core / Network / Storage / Application / Formats *)
  loc : int;  (** source lines *)
  text_bytes : int;  (** code contribution to a standard build *)
  data_bytes : int;
  unused_fraction : float;
      (** share of [text_bytes] removable by ocamlclean-style dataflow
          analysis when the library is linked but only partly used *)
  deps : string list;
}

exception Unknown_library of string

(** Every registered Mirage library (Table 1). Host shims — the
    [hostsock]/[tuntap]/[hostfile] bindings the POSIX developer targets
    link instead of unikernel facilities — are resolvable via {!find} but
    excluded here and from {!by_subsystem}, so the paper's table is
    unchanged by their existence. *)
val all : unit -> lib list

(** @raise Unknown_library *)
val find : string -> lib

val mem : string -> bool

(** Transitive dependency closure of the roots, dependencies first,
    duplicates removed. [rewrite] maps each library name before it is
    visited — to a substitute ([Some] a host shim), or [None] to drop the
    subtree (a facility the host kernel provides); the identity when
    omitted. This is how [Specialize] computes per-target closures.
    @raise Unknown_library *)
val dependency_closure : ?rewrite:(string -> string option) -> string list -> lib list

(** Table 1 layout: [(subsystem, library names)] in presentation order. *)
val by_subsystem : unit -> (string * string list) list

(** Direct reverse dependencies. *)
val dependants : string -> string list
