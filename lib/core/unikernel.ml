type target = Target.t = Posix_sockets | Posix_direct | Xen_direct

type t = {
  domain : Xensim.Domain.t;
  image : Linker.image;
  plan : Specialize.plan;
  config : Config.t;
  sealed : bool;
  ready_at_ns : int;
  target : target;
}

exception Build_error of string

(* Mirage guest initialisation: runtime + PVBoot start-of-day. The memory
   term is the extent allocator reserving the major heap, far cheaper than
   Linux's struct-page initialisation. Calibrated to Figure 6: < 50 ms
   even at 2 GiB. *)
let mirage_profile ~image_bytes =
  {
    Xensim.Toolstack.kind = "mirage";
    image_bytes;
    kernel_init_ns = (fun ~mem_mib -> 12_000_000 + (9_000 * mem_mib));
  }

let exit_codes : (int, int) Hashtbl.t = Hashtbl.create 16

(* The POSIX targets run as host processes: link against the host libc,
   no domain build, no sealing. *)
let posix_libc_bytes = 180 * 1024
let process_spawn_ns = 1_200_000 (* fork+exec+dynamic linking *)

let boot hv ts ?(mode = `Async) ?(dce = Specialize.Ocamlclean) ?(seal = true)
    ?(platform = Platform.xen_extent) ?(target = Xen_direct) ~config ~mem_mib ~main () =
  let open Mthread.Promise in
  let dce = match target with Xen_direct -> dce | Posix_sockets | Posix_direct -> Specialize.Standard in
  let plan = Specialize.plan ~target config dce in
  (match Specialize.verify plan with
  | Ok () -> ()
  | Error msg -> raise (Build_error msg));
  let image = Linker.link plan ~seed:config.Config.aslr_seed in
  let image =
    match target with
    | Xen_direct -> image
    | Posix_sockets | Posix_direct ->
      { image with Linker.total_bytes = image.Linker.total_bytes + posix_libc_bytes }
  in
  let platform = match target with Xen_direct -> platform | Posix_sockets | Posix_direct -> Platform.linux_native in
  let seal = seal && target = Xen_direct in
  let profile = mirage_profile ~image_bytes:image.Linker.total_bytes in
  let built =
    match target with
    | Xen_direct ->
      Xensim.Toolstack.boot ts ~mode ~profile ~name:config.Config.app_name ~mem_mib ~platform
    | Posix_sockets | Posix_direct ->
      (* a process on the developer's host, not a domain build *)
      let d = Xensim.Hypervisor.create_domain hv ~name:config.Config.app_name ~mem_mib ~platform () in
      d.Xensim.Domain.state <- Xensim.Domain.Running;
      bind (sleep hv.Xensim.Hypervisor.sim process_spawn_ns) (fun () ->
          return (d, Engine.Sim.now hv.Xensim.Hypervisor.sim))
  in
  bind built
    (fun (domain, ready_at_ns) ->
      (* Start-of-day: install the randomised image and the runtime memory
         regions, then seal (Xen target only — POSIX targets live in an
         ordinary mutable process address space). *)
      if target = Xen_direct then begin
        let layout = Pvboot.Layout.standard ~mem_mib ~text_bytes:4096 ~data_bytes:4096 in
        Linker.install image domain.Xensim.Domain.pagetable;
        Pvboot.Layout.install_only layout domain.Xensim.Domain.pagetable
          [ Pvboot.Layout.Io_pages; Pvboot.Layout.Minor_heap; Pvboot.Layout.Major_heap;
            Pvboot.Layout.Xen_reserved ]
      end;
      let sealed =
        if seal && hv.Xensim.Hypervisor.seal_patch then begin
          Xensim.Hypervisor.seal hv domain;
          true
        end
        else false
      in
      let console = Devices.Console.create hv ~dom:domain in
      Devices.Console.write console
        (Printf.sprintf "Mirage unikernel %s: %d libraries, %d bytes, sealed=%b\n"
           config.Config.app_name
           (List.length plan.Specialize.libs)
           image.Linker.total_bytes sealed);
      let u = { domain; image; plan; config; sealed; ready_at_ns; target } in
      (* The application main thread: the VM shuts down with its return
         value as exit code. *)
      async (fun () ->
          catch
            (fun () ->
              bind (main u) (fun code ->
                  Hashtbl.replace exit_codes domain.Xensim.Domain.id code;
                  Xensim.Domain.shutdown domain ~exit_code:code;
                  return ()))
            (fun _exn ->
              Hashtbl.replace exit_codes domain.Xensim.Domain.id 255;
              Xensim.Domain.shutdown domain ~exit_code:255;
              return ()));
      return u)

(* What `mirage build` would print next to each target's image size: the
   domain-build + guest-init path for Xen, a process spawn for POSIX. *)
let boot_estimate_ns ~target ~mem_mib ~image_bytes =
  match target with
  | Xen_direct ->
    Xensim.Toolstack.build_time_ns ~mem_mib ~image_bytes
    + (mirage_profile ~image_bytes).Xensim.Toolstack.kernel_init_ns ~mem_mib
  | Posix_sockets | Posix_direct -> process_spawn_ns

let exit_code t =
  match t.domain.Xensim.Domain.state with
  | Xensim.Domain.Shutdown code -> Some code
  | _ -> Hashtbl.find_opt exit_codes t.domain.Xensim.Domain.id
