(** Declarative description of a networked appliance boot.

    Collapses a long argument list into one value that can be built once,
    logged, and reused across benchmark iterations. Construct with
    {!make}, which fills in the defaults ([`Async] toolstack, 32 MiB,
    DHCP, [Xen_direct]). *)

type t = {
  backend_dom : Xensim.Domain.t;  (** dom0-side backend for the NIC *)
  bridge : Netsim.Bridge.t;  (** bridge the NIC attaches to *)
  config : Config.t;  (** appliance library configuration *)
  mode : [ `Sync | `Async ];  (** toolstack build mode *)
  mem_mib : int;
  ip : Netstack.Ipv4.config option;  (** static address, or DHCP when [None] *)
  target : Target.t;  (** which backend the appliance is configured against *)
  metrics_port : int option;
      (** when set, [Appliance.boot] mounts a /metrics exposition endpoint
          on this port and advertises it in the bridge's service directory
          (see [Netsim.Bridge.advertise]) — one line makes the appliance
          scrapable by the monitor *)
  quiet_net : bool;
      (** suppress the gratuitous ARP broadcast a static-IP stack sends
          at bring-up ([Netstack.Stack.create ~announce:false]). Boot
          storms set this and pre-seed ARP caches instead: 10⁴
          simultaneous announcements over a 10⁴-port bridge would be
          10⁸ frame deliveries before the first request. Default
          [false] — normal appliances keep announcing. *)
  rx_slots : int;
      (** receive credit the vif posts on its ring, as netfront's
          negotiated ring size. The default (512) absorbs several TCP
          windows of burst; boot storms use a small ring because 10â´
          vifs times 511 posted grants is millions of live grant-table
          entries for appliances that each serve a handful of frames. *)
}

(** Smart constructor; defaults: [mode = `Async], [mem_mib = 32],
    [ip = None] (DHCP), [target = Xen_direct], no metrics endpoint.
    @raise Invalid_argument if [mem_mib <= 0]. *)
val make :
  backend_dom:Xensim.Domain.t ->
  bridge:Netsim.Bridge.t ->
  config:Config.t ->
  ?mode:[ `Sync | `Async ] ->
  ?mem_mib:int ->
  ?ip:Netstack.Ipv4.config ->
  ?target:Target.t ->
  ?metrics_port:int ->
  ?quiet_net:bool ->
  ?rx_slots:int ->
  unit ->
  t

(** [clone t ~name ?ip ()] stamps out a fleet replica from a template
    spec: same libraries, bridge, target and metrics port, but a fresh
    appliance name, its own address, and an ASR seed re-derived from the
    name (each replica links a differently-randomised image,
    deterministically). The orchestrator uses this to boot shard N+1
    without rebuilding a spec by hand. *)
val clone : t -> name:string -> ?ip:Netstack.Ipv4.config -> ?aslr_seed:int -> unit -> t
