(** The three compilation targets of the progressive developer workflow
    (paper §5.4): one appliance, three device configurations. Each target
    selects which backend the application functors are instantiated with
    ({!Apps}) and which libraries the specialiser links ({!Specialize}). *)

type t =
  | Posix_sockets
      (** a host process over kernel sockets — fast edit/debug cycle,
          host stack does the protocols *)
  | Posix_direct
      (** a host process running the full unikernel netstack over a
          copy-taxed tuntap device *)
  | Xen_direct  (** the sealed unikernel on the PV ring — the deploy target *)

val to_string : t -> string

(** Inverse of {!to_string}; also accepts ["xen"]. *)
val of_string : string -> t option

(** All targets, workflow order. *)
val all : t list
