type dce = Standard | Ocamlclean

type plan = {
  config : Config.t;
  target : Target.t;
  dce : dce;
  libs : Library_registry.lib list;
  text_bytes : int;
  data_bytes : int;
  total_bytes : int;
  total_loc : int;
}

(* Per-target dependency rewriting (§5.4): a POSIX process gets its
   protocols and devices from the host kernel, so the unikernel
   facilities it would otherwise link are replaced by thin host shims or
   dropped outright. Xen_direct is the identity — Table 2 is computed on
   it. *)
let retarget target name =
  match (target, name) with
  | Target.Xen_direct, n -> Some n
  (* both POSIX targets: files come from the host filesystem *)
  | (Target.Posix_sockets | Target.Posix_direct), "blkif" -> Some "hostfile"
  | (Target.Posix_sockets | Target.Posix_direct), "pvboot" -> None
  (* sockets: the whole netstack is the kernel's problem *)
  | Target.Posix_sockets, ("tcp" | "udp") -> Some "hostsock"
  | Target.Posix_sockets, ("netif" | "ring" | "ethernet" | "arp" | "ipv4" | "icmp" | "dhcp") ->
    None
  (* direct: the netstack stays, only the device underneath changes *)
  | Target.Posix_direct, "netif" -> Some "tuntap"
  | Target.Posix_direct, "ring" -> None
  | _, n -> Some n

let lib_text dce (l : Library_registry.lib) =
  match dce with
  | Standard -> l.Library_registry.text_bytes
  | Ocamlclean ->
    int_of_float
      (float_of_int l.Library_registry.text_bytes
      *. (1.0 -. l.Library_registry.unused_fraction))

let plan ?(target = Target.Xen_direct) config dce =
  let libs =
    Library_registry.dependency_closure ~rewrite:(retarget target) config.Config.roots
  in
  let text =
    List.fold_left (fun acc l -> acc + lib_text dce l) config.Config.app_text_bytes libs
  in
  let data = List.fold_left (fun acc l -> acc + l.Library_registry.data_bytes) 0 libs in
  let loc =
    List.fold_left (fun acc l -> acc + l.Library_registry.loc) config.Config.app_loc libs
  in
  {
    config;
    target;
    dce;
    libs;
    text_bytes = text;
    data_bytes = data;
    total_bytes = text + data;
    total_loc = loc;
  }

let contains plan name =
  List.exists (fun l -> l.Library_registry.lib_name = name) plan.libs

(* Libraries a target must not link: the PV machinery has no place in a
   host process, the host shims none in a sealed unikernel, and a
   Posix_sockets appliance that links the netstack is double-stacking on
   top of the kernel's. Checked before closure/minimality so the error
   names the offending backend rather than a generic stray. *)
let forbidden target =
  match target with
  | Target.Xen_direct ->
    [
      ("hostsock", "host-kernel sockets");
      ("tuntap", "the tuntap device");
      ("hostfile", "host files");
    ]
  | Target.Posix_sockets ->
    List.map
      (fun n -> (n, "the unikernel network stack"))
      [ "ethernet"; "arp"; "ipv4"; "icmp"; "tcp"; "udp"; "dhcp"; "netif" ]
    @ [ ("ring", "PV rings"); ("pvboot", "the PV boot shim"); ("tuntap", "the tuntap device") ]
  | Target.Posix_direct ->
    [
      ("netif", "the PV network device");
      ("ring", "PV rings");
      ("pvboot", "the PV boot shim");
      ("hostsock", "host-kernel sockets");
    ]

let verify plan =
  let linked = List.map (fun l -> l.Library_registry.lib_name) plan.libs in
  let bad =
    List.find_map
      (fun (n, what) -> if List.mem n linked then Some (n, what) else None)
      (forbidden plan.target)
  in
  match bad with
  | Some (n, what) ->
    Error
      (Printf.sprintf "target %s must not link %s (%s)" (Target.to_string plan.target) n what)
  | None -> (
    let rewrite = retarget plan.target in
    (* Closure: every (retargeted) dependency of a linked library is linked. *)
    let missing_dep =
      List.find_map
        (fun l ->
          List.find_map
            (fun d ->
              match rewrite d with
              | None -> None
              | Some d ->
                if List.mem d linked then None else Some (l.Library_registry.lib_name, d))
            l.Library_registry.deps)
        plan.libs
    in
    match missing_dep with
    | Some (l, d) -> Error (Printf.sprintf "library %s depends on %s which is not linked" l d)
    | None ->
      (* Minimality: everything linked is reachable from the roots. *)
      let reachable =
        List.map
          (fun l -> l.Library_registry.lib_name)
          (Library_registry.dependency_closure ~rewrite plan.config.Config.roots)
      in
      let stray = List.filter (fun n -> not (List.mem n reachable)) linked in
      if stray = [] then Ok ()
      else Error ("unrequested services linked: " ^ String.concat ", " stray))

let elided plan =
  List.filter_map
    (fun l ->
      if contains plan l.Library_registry.lib_name then None
      else Some l.Library_registry.lib_name)
    (Library_registry.all ())
