(* The configure step (paper §3, Fig. 2): every protocol server in the
   tree is a functor over Device_sig signatures, and this module is the
   single place they meet a concrete backend. [Net] instantiates them
   over the unikernel netstack — what a Posix_direct or Xen_direct
   appliance runs; [Host] over Hostnet's host-kernel sockets — the
   Posix_sockets developer target. Application code built against either
   is line-for-line identical; only this file differs between targets. *)

module Net = struct
  module Http = Uhttp.Server.Make (Netstack.Device.Tcp)
  module Http_client = Uhttp.Client.Make (Netstack.Device.Tcp)
  module Httperf = Uhttp.Httperf.Make (Netstack.Device.Tcp)
  module Dns = Dns.Server.Make (Netstack.Device.Udp)
  module Smtp = Smtp.Make (Netstack.Device.Tcp)
  module Baseline = Baseline.Appliances.Make (Netstack.Device.Tcp)
  module Metrics = Uhttp.Metrics_export.Make (Netstack.Device)
  module Monitor = Monitor.Make (Netstack.Device.Tcp)
  module Loadgen = Lb.Loadgen.Make (Netstack.Device.Tcp)
  module Orchestrator = Orchestrator.Make (Netstack.Device.Tcp)
  module Lb = Lb.Balancer.Make (Netstack.Device.Tcp)
end

module Host = struct
  module Http = Uhttp.Server.Make (Hostnet.Device.Tcp)
  module Http_client = Uhttp.Client.Make (Hostnet.Device.Tcp)
  module Httperf = Uhttp.Httperf.Make (Hostnet.Device.Tcp)
  module Dns = Dns.Server.Make (Hostnet.Device.Udp)
  module Smtp = Smtp.Make (Hostnet.Device.Tcp)
  module Baseline = Baseline.Appliances.Make (Hostnet.Device.Tcp)
  module Metrics = Uhttp.Metrics_export.Make (Hostnet.Device)
  module Monitor = Monitor.Make (Hostnet.Device.Tcp)
  module Loadgen = Lb.Loadgen.Make (Hostnet.Device.Tcp)
  module Orchestrator = Orchestrator.Make (Hostnet.Device.Tcp)
  module Lb = Lb.Balancer.Make (Hostnet.Device.Tcp)
end
