(** The assembled network stack: Ethernet + ARP + IPv4 + ICMP + UDP + TCP
    over a {!Devices.Netif}, configured statically (compiled-in address) or
    dynamically via DHCP — the two configuration modes of paper §2.3.1. *)

type t

type ip_config =
  | Static of Ipv4.config
  | Dhcp  (** acquire a lease before {!create}'s promise resolves *)

(** [create sim ?dom ~netif config] brings the interface up. With [Dhcp]
    the promise resolves after the lease is bound. [dom] is used for
    per-segment TCP cost accounting. [announce] (default true) controls
    the gratuitous ARP broadcast a [Static] stack sends at bring-up;
    boot storms disable it — 10⁴ simultaneous broadcasts over a
    10⁴-port bridge is 10⁸ deliveries before the first request. *)
val create :
  Engine.Sim.t ->
  ?dom:Xensim.Domain.t ->
  ?announce:bool ->
  netif:Devices.Netif.t ->
  ip_config ->
  t Mthread.Promise.t

val ethernet : t -> Ethernet.t
val arp : t -> Arp.t
val ipv4 : t -> Ipv4.t
val icmp : t -> Icmp4.t
val udp : t -> Udp.t
val tcp : t -> Tcp.t

val address : t -> Ipaddr.t
val mac : t -> Macaddr.t
