module Seq = Tcp_wire.Seq

(* Rebound to the canonical Device_sig exceptions so application code
   functorized over Device_sig.TCP catches the same runtime identity
   whichever backend raised it. *)
exception Connection_refused = Device_sig.Connection_refused
exception Connection_reset = Device_sig.Connection_reset

let default_mss = 1448
(* Sized below the netfront receive credit (127 frames ~ 180 KB) so a
   full window burst cannot overrun the posted buffers. *)
let rcv_wnd_bytes = 131072
let snd_buf_bytes = 262144
let our_wscale = 7
let initial_rto_ns = Engine.Sim.ms 200
let min_rto_ns = Engine.Sim.ms 50
let max_rto_ns = Engine.Sim.sec 60
let max_persist_ns = Engine.Sim.sec 5
let msl_ns = Engine.Sim.sec 1
let max_syn_retries = 5

(* Data-path give-up threshold, Linux's tcp_retries2: after this many
   consecutive unacknowledged RTO retransmissions (or zero-window persist
   probes) the peer is presumed gone and the flow fails with [Timeout].
   Without a cap a vanished peer — a destroyed domain, say — leaves the
   sender rearming its backed-off timer for ever, which in a
   run-to-empty simulator means the run never terminates.  A 10^4-domain
   boot storm makes that certain rather than merely possible. *)
let max_data_retries = 15

(* Cap on the out-of-order reassembly list. A window-respecting sender of
   full-size segments can have at most rcv_wnd_bytes / default_mss ≈ 91
   segments outstanding, so 128 is never reached in legitimate operation;
   only a tinygram flood (many sub-MSS segments behind a hole) or a peer
   ignoring our window hits it. The furthest segment is evicted first —
   it is the one the sender will retransmit last anyway. *)
let max_ooo_segments = 128

let c_segs_sent = Trace.counter "tcp.segs_sent"
let c_retransmit = Trace.counter "tcp.retransmits"
let c_persist = Trace.counter "tcp.persist_probes"
let c_ooo_evict = Trace.counter "tcp.ooo_evictions"
let c_wnd_stale = Trace.counter "tcp.stale_window_updates"
let c_gro_merged = Trace.counter "tcp.gro_coalesced"

(* GRO-style receive coalescing: contiguous in-order segments are parked
   on the flow and delivered (plus ACKed) as one batch when a PSH
   arrives, a hole opens, the batch hits [gro_max_bytes], or the flush
   timer expires. Off by default: immediate per-segment delivery and
   ACKing is what every committed figure was produced under. *)
let gro_enabled = ref false
let gro_flush_delay_ns = ref 100_000
let gro_max_bytes = 65536

let set_gro ?(flush_delay_ns = 100_000) on =
  gro_enabled := on;
  gro_flush_delay_ns := flush_delay_ns

type state =
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

type rtx_entry = {
  e_seq : Seq.t;
  e_len : int;  (* sequence space consumed, incl. SYN/FIN *)
  e_payload : Bytestruct.t;
  e_syn : bool;
  e_fin : bool;
  mutable e_sent_at : int;
  mutable e_retx : bool;
  e_flow : Trace.Flow.id;  (* causal flow that originated this data *)
}

type key = { k_port : int; k_rip : Ipaddr.t; k_rport : int }

type flow = {
  t : engine;
  key : key;
  mutable state : state;
  (* send side *)
  mutable snd_una : Seq.t;
  mutable snd_nxt : Seq.t;
  mutable snd_wnd : int;
  mutable snd_wl1 : Seq.t;  (* seq of the segment last used to update snd_wnd *)
  mutable snd_wl2 : Seq.t;  (* ack of that segment (RFC 793 §3.9) *)
  mutable snd_wscale : int;
  mutable mss : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : Seq.t;
  mutable rto_recover : Seq.t;  (* snd_nxt at the last RTO: go-back-N up to here *)
  rtx : rtx_entry Queue.t;  (* ascending seq; O(1) tail append *)
  tx_chunks : Bytestruct.t Queue.t;
  mutable tx_head_off : int;
  mutable tx_buffered : int;
  tx_waiters : unit Mthread.Promise.u Queue.t;
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  (* receive side *)
  mutable rcv_nxt : Seq.t;
  mutable rcv_wscale : int;
  mutable rx_buffered : int;  (* bytes delivered to [rx] but not yet read *)
  (* Reassembly entries and stream chunks may alias pooled driver pages;
     the [Pktbuf.t option] is the reference held on each one's behalf
     ([None] = a private copy, nothing to release). *)
  mutable ooo : (Seq.t * Bytestruct.t * Pktbuf.t option) list;  (* ascending seq, disjoint *)
  rx : Bytestruct.t Mthread.Mstream.t;
  rx_owners : Pktbuf.t option Queue.t;  (* one entry per [rx] push, FIFO *)
  mutable read_hold : Pktbuf.t option;  (* ref backing the chunk last returned by [read] *)
  (* GRO pending batch: reverse-ordered in-order segments not yet pushed. *)
  mutable gro_rev : (Bytestruct.t * Pktbuf.t option) list;
  mutable gro_bytes : int;
  mutable gro_pkts : int;
  mutable gro_timer : Engine.Sim.handle option;
  (* timers and RTT estimation *)
  mutable rto_ns : int;
  mutable srtt_ns : int;
  mutable rttvar_ns : int;
  mutable rtt_probe : (Seq.t * int) option;
  mutable rto_timer : Engine.Timerwheel.timer option;
  mutable persist_timer : Engine.Timerwheel.timer option;
  mutable persist_backoff_ns : int;
  mutable probes_out : int;  (* consecutive unanswered zero-window probes *)
  (* lifecycle *)
  mutable connect_waker : flow Mthread.Promise.u option;
  mutable close_waker : unit Mthread.Promise.u option;
  mutable syn_tries : int;
  mutable rto_tries : int;  (* consecutive data RTOs without forward progress *)
  mutable error : exn option;
  mutable bytes_acked : int;
  mutable bytes_received : int;
  (* introspection (the ss-style socket table) *)
  created_ns : int;
  mutable retx_count : int;  (* this flow's retransmitted segments *)
}

and engine = {
  sim : Engine.Sim.t;
  ip : Ipv4.t;
  (* All protocol timers (RTO, persist) live on one hierarchical wheel:
     O(1) arm/cancel per segment instead of a heap entry per flow timer. *)
  wheel : Engine.Timerwheel.t;
  dom : Xensim.Domain.t option;
  flows : (key, flow) Hashtbl.t;
  listeners : (int, flow -> unit Mthread.Promise.t) Hashtbl.t;
  mutable next_ephemeral : int;
  mutable segs_sent : int;
  mutable segs_received : int;
  mutable retransmissions : int;
  mutable fast_retransmits : int;
  mutable rto_fires : int;
  mutable persist_probes : int;
  mutable ooo_evictions : int;
}

type t = engine

(* ---------- low-level output ---------- *)

(* Real receive-window accounting: advertise what is left of the receive
   buffer after subtracting bytes delivered to the application stream but
   not yet read. A non-reading application drives this to zero, stalling
   the sender (which then persist-probes, see below) instead of letting it
   flood an unbounded queue. *)
let advertised_window fl = max 0 (rcv_wnd_bytes - fl.rx_buffered) lsr our_wscale

let send_segment t ~key ~seq ~ack ~flags ~options ~window ~payload =
  t.segs_sent <- t.segs_sent + 1;
  Trace.incr c_segs_sent;
  if Trace.enabled () then
    Trace.emit
      ?dom:(Option.map (fun d -> d.Xensim.Domain.id) t.dom)
      ~cat:Trace.Net
      ~payload:
        [ ("seq", Trace.Int (Seq.to_int seq)); ("len", Trace.Int (Bytestruct.length payload)) ]
      "tcp.tx_segment";
  let seg =
    {
      Tcp_wire.src_port = key.k_port;
      dst_port = key.k_rport;
      seq;
      ack;
      flags;
      window;
      options;
      payload;
    }
  in
  let frags = Tcp_wire.encode ~src:(Ipv4.address t.ip) ~dst:key.k_rip seg in
  let emit () = Ipv4.output t.ip ~dst:key.k_rip ~proto:Ipv4.proto_tcp frags in
  match t.dom with
  | None -> Mthread.Promise.async emit
  | Some d ->
    (* Segment preparation occupies the vCPU before the packet can leave:
       data-bearing segments pay the full transmit path, pure ACKs a small
       fixed cost. This gating is what caps Figure 8's throughput. *)
    let cost =
      if Bytestruct.length payload > 0 || flags.Tcp_wire.syn || flags.Tcp_wire.fin then
        d.Xensim.Domain.platform.Platform.tcp_tx_extra_ns
      else d.Xensim.Domain.platform.Platform.tcp_ack_extra_ns
    in
    let send () =
      Mthread.Promise.async (fun () ->
          Mthread.Promise.bind (Xensim.Domain.charge d ~cost) (fun () -> emit ()))
    in
    if Trace.Prof.enabled () then Trace.Prof.with_frame "tcp" send else send ()

let send_rst_for t ~key ~seq ~ack =
  send_segment t ~key ~seq ~ack
    ~flags:{ Tcp_wire.flags_none with rst = true; ack = true }
    ~options:[] ~window:0 ~payload:(Bytestruct.create 0)

(* ---------- timers ---------- *)

let cancel_rto fl =
  match fl.rto_timer with
  | Some h ->
    Engine.Timerwheel.cancel fl.t.wheel h;
    fl.rto_timer <- None
  | None -> ()

let cancel_persist fl =
  match fl.persist_timer with
  | Some h ->
    Engine.Timerwheel.cancel fl.t.wheel h;
    fl.persist_timer <- None
  | None -> ()

(* Drop reassembly and coalescing references back to the pool. Data that
   never reached the stream is discarded — on an abortive close that is
   RST semantics, and on an orderly one the FIN flush has already run. *)
let release_rx_refs fl =
  (match fl.gro_timer with
  | Some h ->
    Engine.Sim.cancel h;
    fl.gro_timer <- None
  | None -> ());
  List.iter (fun (_, o) -> Option.iter Pktbuf.release o) fl.gro_rev;
  fl.gro_rev <- [];
  fl.gro_bytes <- 0;
  fl.gro_pkts <- 0;
  List.iter (fun (_, _, o) -> Option.iter Pktbuf.release o) fl.ooo;
  fl.ooo <- []

let rec arm_rto fl =
  cancel_rto fl;
  if not (Queue.is_empty fl.rtx) then
    fl.rto_timer <-
      Some
        (Engine.Timerwheel.arm fl.t.wheel
           ~deadline:(Engine.Sim.now fl.t.sim + fl.rto_ns)
           (fun () -> on_rto fl))

and on_rto fl =
  fl.rto_timer <- None;
  match Queue.peek_opt fl.rtx with
  | None -> ()
  | Some e ->
    fl.t.rto_fires <- fl.t.rto_fires + 1;
    (match fl.state with
    | Syn_sent | Syn_rcvd ->
      fl.syn_tries <- fl.syn_tries + 1;
      if fl.syn_tries > max_syn_retries then begin
        fail_flow fl Mthread.Promise.Timeout;
        cancel_rto fl
      end
      else retransmit_entry fl e
    | _ ->
      fl.rto_tries <- fl.rto_tries + 1;
      if fl.rto_tries > max_data_retries then begin
        (* Data-path give-up (tcp_retries2): this many consecutive
           backed-off RTOs with no forward progress means the peer is
           gone — fail the flow instead of retransmitting forever. *)
        fail_flow fl Mthread.Promise.Timeout;
        cancel_rto fl
      end
      else begin
        (* Timeout: collapse to slow start (RFC 5681). *)
        let flight = Seq.diff fl.snd_nxt fl.snd_una in
        fl.ssthresh <- max (flight / 2) (2 * fl.mss);
        fl.cwnd <- fl.mss;
        fl.in_recovery <- false;
        fl.dupacks <- 0;
        (* Everything in flight at the timeout is presumed lost: record the
           high-water mark so returning ACKs clock go-back-N retransmission
           (RFC 5681 §3.1) instead of paying one backed-off RTO per segment. *)
        fl.rto_recover <- fl.snd_nxt;
        retransmit_entry fl e
      end);
    fl.rto_ns <- min (fl.rto_ns * 2) max_rto_ns;
    arm_rto fl

and retransmit_entry fl e =
  (* Attribute the retransmission (and the whole TX path under it) to the
     causal flow that originally queued this data, not to whichever
     context the timer or ACK happened to fire in. *)
  Trace.Flow.with_flow e.e_flow (fun () -> retransmit_entry_now fl e)

and retransmit_entry_now fl e =
  fl.t.retransmissions <- fl.t.retransmissions + 1;
  fl.retx_count <- fl.retx_count + 1;
  (* Karn's rule: any retransmission — RTO, fast retransmit, partial-ack
     hole fill or persist probe — invalidates the open RTT probe, since an
     ACK covering it can no longer be attributed to one transmission. *)
  fl.rtt_probe <- None;
  if Trace.enabled () then begin
    Trace.incr c_retransmit;
    Trace.emit
      ?dom:(Option.map (fun d -> d.Xensim.Domain.id) fl.t.dom)
      ~cat:Trace.Net
      ~payload:[ ("seq", Trace.Int (Seq.to_int e.e_seq)); ("len", Trace.Int e.e_len) ]
      "tcp.retransmit"
  end;
  if Trace.Flight.enabled () then
    Trace.Flight.note
      ?dom:(Option.map (fun d -> d.Xensim.Domain.id) fl.t.dom)
      ~cat:Trace.Net
      ~payload:
        [
          ("seq", Trace.Int (Seq.to_int e.e_seq));
          ("len", Trace.Int e.e_len);
          ("rport", Trace.Int fl.key.k_rport);
          ("rto_ns", Trace.Int fl.rto_ns);
        ]
      "tcp.retransmit";
  e.e_retx <- true;
  e.e_sent_at <- Engine.Sim.now fl.t.sim;
  let flags =
    {
      Tcp_wire.flags_none with
      syn = e.e_syn;
      fin = e.e_fin;
      ack = fl.state <> Syn_sent;
      psh = Bytestruct.length e.e_payload > 0;
    }
  in
  let options =
    if e.e_syn then [ Tcp_wire.Mss fl.mss; Tcp_wire.Window_scale our_wscale ] else []
  in
  send_segment fl.t ~key:fl.key ~seq:e.e_seq
    ~ack:(if fl.state = Syn_sent then Seq.zero else fl.rcv_nxt)
    ~flags ~options ~window:(advertised_window fl) ~payload:e.e_payload

(* ---------- failure ---------- *)

and fail_flow fl err =
  if fl.state <> Closed then begin
    (* Black box first: freeze the flow's identity and send-state while it
       is still intact, then trip a postmortem on the give-up path — a
       [Timeout] means retransmits/probes exhausted against a silent peer,
       exactly the failure that is invisible once the flow is dropped. *)
    if Trace.Flight.enabled () then begin
      let dom = match fl.t.dom with Some d -> d.Xensim.Domain.id | None -> -1 in
      let payload =
        [
          ("port", Trace.Int fl.key.k_port);
          ("rip", Trace.String (Ipaddr.to_string fl.key.k_rip));
          ("rport", Trace.Int fl.key.k_rport);
          ("snd_una", Trace.Int (Seq.to_int fl.snd_una));
          ("snd_nxt", Trace.Int (Seq.to_int fl.snd_nxt));
          ("tx_buffered", Trace.Int fl.tx_buffered);
          ("rto_ns", Trace.Int fl.rto_ns);
          ("probes_out", Trace.Int fl.probes_out);
        ]
      in
      Trace.Flight.note ~dom ~cat:Trace.Net ~payload "tcp.flow_fail";
      match err with
      | Mthread.Promise.Timeout -> Trace.Flight.trip ~dom ~payload ~reason:"tcp.timeout" ()
      | _ -> ()
    end;
    fl.state <- Closed;
    fl.error <- Some err;
    cancel_rto fl;
    cancel_persist fl;
    (* Drop all unsent/unacked data: nothing may retransmit from a dead
       flow, and a non-empty [rtx] would invite a later [arm_rto]. *)
    Queue.clear fl.rtx;
    Queue.clear fl.tx_chunks;
    fl.tx_head_off <- 0;
    fl.tx_buffered <- 0;
    release_rx_refs fl;
    Hashtbl.remove fl.t.flows fl.key;
    Mthread.Mstream.close fl.rx;
    (match fl.connect_waker with
    | Some u when Mthread.Promise.wakener_pending u -> Mthread.Promise.wakeup_exn u err
    | _ -> ());
    (match fl.close_waker with
    | Some u when Mthread.Promise.wakener_pending u -> Mthread.Promise.wakeup u ()
    | _ -> ());
    Queue.iter
      (fun u -> if Mthread.Promise.wakener_pending u then Mthread.Promise.wakeup_exn u err)
      fl.tx_waiters;
    Queue.clear fl.tx_waiters
  end

(* ---------- send path ---------- *)

let flight_size fl = Seq.diff fl.snd_nxt fl.snd_una

let effective_snd_wnd fl = min fl.snd_wnd fl.cwnd

(* Gather up to [n] bytes from the transmit chunk queue into one buffer.
   When the head chunk covers the whole segment — the common case, a
   writer handing us MSS-or-larger buffers — the rtx entry is a view into
   the writer's own buffer rather than a copy: [write]'s ownership
   transfer guarantees the bytes stay immutable until acknowledged. *)
let gather_tx fl n =
  let head = Queue.peek fl.tx_chunks in
  let head_avail = Bytestruct.length head - fl.tx_head_off in
  if head_avail >= n then begin
    let out = Bytestruct.sub head fl.tx_head_off n in
    if head_avail = n then begin
      ignore (Queue.pop fl.tx_chunks);
      fl.tx_head_off <- 0
    end
    else fl.tx_head_off <- fl.tx_head_off + n;
    fl.tx_buffered <- fl.tx_buffered - n;
    out
  end
  else begin
    let out = Bytestruct.create n in
    let filled = ref 0 in
    while !filled < n do
      let chunk = Queue.peek fl.tx_chunks in
      let avail = Bytestruct.length chunk - fl.tx_head_off in
      let take = min avail (n - !filled) in
      Bytestruct.blit chunk fl.tx_head_off out !filled take;
      filled := !filled + take;
      if take = avail then begin
        ignore (Queue.pop fl.tx_chunks);
        fl.tx_head_off <- 0
      end
      else fl.tx_head_off <- fl.tx_head_off + take
    done;
    fl.tx_buffered <- fl.tx_buffered - n;
    out
  end

let wake_tx_waiters fl =
  while
    fl.tx_buffered < snd_buf_bytes
    &&
    match Queue.take_opt fl.tx_waiters with
    | Some u ->
      if Mthread.Promise.wakener_pending u then Mthread.Promise.wakeup u ();
      true
    | None -> false
  do
    ()
  done

let rec try_output fl =
  match fl.state with
  | Established | Close_wait | Fin_wait_1 | Closing | Last_ack ->
    let window = effective_snd_wnd fl in
    let in_flight = flight_size fl in
    if fl.tx_buffered > 0 && in_flight < window then begin
      let room = window - in_flight in
      let len = min (min fl.tx_buffered room) fl.mss in
      if len > 0 then begin
        let payload = gather_tx fl len in
        let entry =
          {
            e_seq = fl.snd_nxt;
            e_len = len;
            e_payload = payload;
            e_syn = false;
            e_fin = false;
            e_sent_at = Engine.Sim.now fl.t.sim;
            e_retx = false;
            e_flow = (if Trace.enabled () then Trace.Flow.current () else Trace.Flow.none);
          }
        in
        Queue.add entry fl.rtx;
        if fl.rtt_probe = None then
          fl.rtt_probe <- Some (Seq.add fl.snd_nxt len, Engine.Sim.now fl.t.sim);
        fl.snd_nxt <- Seq.add fl.snd_nxt len;
        send_segment fl.t ~key:fl.key ~seq:entry.e_seq ~ack:fl.rcv_nxt
          ~flags:{ Tcp_wire.flags_none with ack = true; psh = fl.tx_buffered = 0 }
          ~options:[] ~window:(advertised_window fl) ~payload;
        if fl.rto_timer = None then arm_rto fl;
        wake_tx_waiters fl;
        try_output fl
      end
    end
    else begin
      maybe_send_fin fl;
      maybe_arm_persist fl
    end
  | Syn_sent | Syn_rcvd | Fin_wait_2 | Time_wait | Closed -> ()

and maybe_send_fin fl =
  if
    fl.fin_queued && (not fl.fin_sent) && fl.tx_buffered = 0
    && flight_size fl < effective_snd_wnd fl
  then begin
    fl.fin_sent <- true;
    let entry =
      {
        e_seq = fl.snd_nxt;
        e_len = 1;
        e_payload = Bytestruct.create 0;
        e_syn = false;
        e_fin = true;
        e_sent_at = Engine.Sim.now fl.t.sim;
        e_retx = false;
        e_flow = (if Trace.enabled () then Trace.Flow.current () else Trace.Flow.none);
      }
    in
    Queue.add entry fl.rtx;
    fl.snd_nxt <- Seq.add fl.snd_nxt 1;
    send_segment fl.t ~key:fl.key ~seq:entry.e_seq ~ack:fl.rcv_nxt
      ~flags:{ Tcp_wire.flags_none with ack = true; fin = true }
      ~options:[] ~window:(advertised_window fl) ~payload:entry.e_payload;
    if fl.rto_timer = None then arm_rto fl
  end

(* Persist timer (RFC 1122 4.2.2.17): a peer advertising a zero window
   with nothing of ours in flight would deadlock us — its reopening window
   update is a pure ACK, sent unreliably. Probe it with one byte (or our
   pending FIN) on an exponentially backed-off timer until it reopens. *)
and maybe_arm_persist fl =
  if
    fl.persist_timer = None && fl.snd_wnd = 0 && Queue.is_empty fl.rtx
    && (fl.tx_buffered > 0 || (fl.fin_queued && not fl.fin_sent))
  then begin
    if fl.persist_backoff_ns = 0 then fl.persist_backoff_ns <- max fl.rto_ns min_rto_ns;
    fl.persist_timer <-
      Some
        (Engine.Timerwheel.arm fl.t.wheel
           ~deadline:(Engine.Sim.now fl.t.sim + fl.persist_backoff_ns)
           (fun () -> on_persist fl))
  end

and on_persist fl =
  fl.persist_timer <- None;
  match fl.state with
  | Established | Close_wait | Fin_wait_1 | Closing | Last_ack ->
    if fl.snd_wnd > 0 then begin
      fl.persist_backoff_ns <- 0;
      fl.probes_out <- 0;
      if (not (Queue.is_empty fl.rtx)) && fl.rto_timer = None then arm_rto fl;
      try_output fl
    end
    else if fl.probes_out >= max_data_retries then
      (* The window never reopened and no probe was ever answered: the
         peer is gone (Linux's probe counter against tcp_retries2). *)
      fail_flow fl Mthread.Promise.Timeout
    else begin
      fl.probes_out <- fl.probes_out + 1;
      fl.t.persist_probes <- fl.t.persist_probes + 1;
      if Trace.enabled () then begin
        Trace.incr c_persist;
        Trace.emit
          ?dom:(Option.map (fun d -> d.Xensim.Domain.id) fl.t.dom)
          ~cat:Trace.Net
          ~payload:[ ("backoff_ns", Trace.Int fl.persist_backoff_ns) ]
          "tcp.persist_probe"
      end;
      if Trace.Flight.enabled () then
        Trace.Flight.note
          ?dom:(Option.map (fun d -> d.Xensim.Domain.id) fl.t.dom)
          ~cat:Trace.Net
          ~payload:
            [
              ("backoff_ns", Trace.Int fl.persist_backoff_ns);
              ("probes_out", Trace.Int fl.probes_out);
              ("rport", Trace.Int fl.key.k_rport);
            ]
          "tcp.persist_probe";
      (match Queue.peek_opt fl.rtx with
      | Some e ->
        (* The previous probe is still unacknowledged: resend it. *)
        retransmit_entry fl e
      | None ->
        if fl.tx_buffered > 0 then begin
          let payload = gather_tx fl 1 in
          let entry =
            {
              e_seq = fl.snd_nxt;
              e_len = 1;
              e_payload = payload;
              e_syn = false;
              e_fin = false;
              e_sent_at = Engine.Sim.now fl.t.sim;
              e_retx = false;
              e_flow = (if Trace.enabled () then Trace.Flow.current () else Trace.Flow.none);
            }
          in
          Queue.add entry fl.rtx;
          fl.snd_nxt <- Seq.add fl.snd_nxt 1;
          send_segment fl.t ~key:fl.key ~seq:entry.e_seq ~ack:fl.rcv_nxt
            ~flags:{ Tcp_wire.flags_none with ack = true; psh = true }
            ~options:[] ~window:(advertised_window fl) ~payload
        end
        else if fl.fin_queued && not fl.fin_sent then begin
          fl.fin_sent <- true;
          let entry =
            {
              e_seq = fl.snd_nxt;
              e_len = 1;
              e_payload = Bytestruct.create 0;
              e_syn = false;
              e_fin = true;
              e_sent_at = Engine.Sim.now fl.t.sim;
              e_retx = false;
              e_flow = (if Trace.enabled () then Trace.Flow.current () else Trace.Flow.none);
            }
          in
          Queue.add entry fl.rtx;
          fl.snd_nxt <- Seq.add fl.snd_nxt 1;
          send_segment fl.t ~key:fl.key ~seq:entry.e_seq ~ack:fl.rcv_nxt
            ~flags:{ Tcp_wire.flags_none with ack = true; fin = true }
            ~options:[] ~window:(advertised_window fl) ~payload:entry.e_payload
        end);
      fl.persist_backoff_ns <- min (fl.persist_backoff_ns * 2) max_persist_ns;
      fl.persist_timer <-
        Some
          (Engine.Timerwheel.arm fl.t.wheel
             ~deadline:(Engine.Sim.now fl.t.sim + fl.persist_backoff_ns)
             (fun () -> on_persist fl))
    end
  | Syn_sent | Syn_rcvd | Fin_wait_2 | Time_wait | Closed -> ()

(* ---------- RTT estimation (RFC 6298) ---------- *)


let c_rtt_samples = Trace.counter "tcp.rtt_samples"

let rtt_sample fl sample_ns =
  if Trace.enabled () then begin
    Trace.incr c_rtt_samples;
    (* A segment rtt span: the probe opened at transmission closes here. *)
    Trace.record_span_ns
      ?dom:(Option.map (fun d -> d.Xensim.Domain.id) fl.t.dom)
      ~cat:Trace.Net "tcp.rtt" sample_ns
  end;
  if fl.srtt_ns = 0 then begin
    fl.srtt_ns <- sample_ns;
    fl.rttvar_ns <- sample_ns / 2
  end
  else begin
    let err = abs (fl.srtt_ns - sample_ns) in
    fl.rttvar_ns <- ((3 * fl.rttvar_ns) + err) / 4;
    fl.srtt_ns <- ((7 * fl.srtt_ns) + sample_ns) / 8
  end;
  fl.rto_ns <- min max_rto_ns (max min_rto_ns (fl.srtt_ns + (4 * fl.rttvar_ns)))

(* ---------- ACK processing ---------- *)

let remove_acked fl ack =
  let acked = ref 0 in
  let stop = ref false in
  while not !stop do
    match Queue.peek_opt fl.rtx with
    | Some e when Seq.leq (Seq.add e.e_seq e.e_len) ack ->
      acked := !acked + e.e_len;
      ignore (Queue.pop fl.rtx)
    | _ -> stop := true
  done;
  !acked

let congestion_avoidance_ack fl acked_bytes =
  if fl.cwnd < fl.ssthresh then fl.cwnd <- fl.cwnd + min acked_bytes fl.mss
  else fl.cwnd <- fl.cwnd + max 1 (fl.mss * fl.mss / fl.cwnd)

let enter_fast_retransmit fl =
  fl.t.fast_retransmits <- fl.t.fast_retransmits + 1;
  let flight = flight_size fl in
  fl.ssthresh <- max (flight / 2) (2 * fl.mss);
  fl.recover <- fl.snd_nxt;
  fl.in_recovery <- true;
  fl.cwnd <- fl.ssthresh + (3 * fl.mss);
  (match Queue.peek_opt fl.rtx with Some e -> retransmit_entry fl e | None -> ());
  arm_rto fl

(* [old_wnd] is the send window before this segment's (possibly rejected)
   window update: a pure window update must not be mistaken for a dupack. *)
let handle_ack fl ~old_wnd (seg : Tcp_wire.segment) =
  let ack = seg.ack in
  if Seq.gt ack fl.snd_una && Seq.leq ack fl.snd_nxt then begin
    (* New data acknowledged. *)
    let acked = remove_acked fl ack in
    fl.snd_una <- ack;
    fl.bytes_acked <- fl.bytes_acked + acked;
    fl.dupacks <- 0;
    fl.rto_tries <- 0;
    fl.probes_out <- 0;
    (match fl.rtt_probe with
    | Some (probe_seq, t0) when Seq.geq ack probe_seq ->
      (* Karn: only sample if nothing acked was retransmitted — the probe
         is cleared on any retransmission, so reaching here is a clean
         sample. *)
      rtt_sample fl (Engine.Sim.now fl.t.sim - t0);
      fl.rtt_probe <- None
    | _ -> ());
    if fl.in_recovery then begin
      if Seq.geq ack fl.recover then begin
        (* Full acknowledgment: leave recovery (NewReno). *)
        fl.in_recovery <- false;
        fl.cwnd <- fl.ssthresh
      end
      else begin
        (* Partial ack: retransmit the next hole, deflate. *)
        (match Queue.peek_opt fl.rtx with Some e -> retransmit_entry fl e | None -> ());
        fl.cwnd <- max fl.mss (fl.cwnd - acked + fl.mss)
      end
    end
    else congestion_avoidance_ack fl acked;
    (* Post-RTO go-back-N: until the pre-timeout flight is fully acked,
       each returning ACK clocks out the next presumed-lost segment. *)
    if (not fl.in_recovery) && Seq.lt fl.snd_una fl.rto_recover then
      (match Queue.peek_opt fl.rtx with Some e -> retransmit_entry fl e | None -> ());
    if Queue.is_empty fl.rtx then cancel_rto fl else arm_rto fl;
    wake_tx_waiters fl
  end
  else if
    Seq.equal ack fl.snd_una
    && (not (Queue.is_empty fl.rtx))
    && Bytestruct.length seg.payload = 0
    && (not seg.flags.Tcp_wire.syn)
    && fl.snd_wnd = old_wnd
  then begin
    fl.dupacks <- fl.dupacks + 1;
    if fl.in_recovery then begin
      fl.cwnd <- fl.cwnd + fl.mss;
      try_output fl
    end
    else if fl.dupacks = 3 then enter_fast_retransmit fl
  end

(* ---------- receive path ---------- *)

(* Push one chunk to the application stream, recording the pool
   reference (if any) held on its behalf. The owner must be queued
   before the push: a pending reader's callback runs inside [push]. *)
let push_rx fl view owner =
  Queue.add owner fl.rx_owners;
  Mthread.Mstream.push fl.rx view


let rx_account fl len =
  fl.bytes_received <- fl.bytes_received + len;
  fl.rx_buffered <- fl.rx_buffered + len;
  if Trace.enabled () then
    Trace.emit
      ?dom:(Option.map (fun d -> d.Xensim.Domain.id) fl.t.dom)
      ~cat:Trace.Net
      ~payload:[ ("qlen", Trace.Int fl.rx_buffered) ]
      "tcp.rx_buffered";
  if Trace.Flight.enabled () then Trace.Flight.watermark "tcp.rx_buffered" fl.rx_buffered

let deliver_rx fl ?owner payload =
  (* Zero-copy to the application boundary: the chunk is a view over the
     driver's pool page, pinned by its own reference until the reader
     moves past it (cf. paper §3.4.1 where GC tracking plays this role).
     Without an owner the payload is already a private copy. *)
  rx_account fl (Bytestruct.length payload);
  Option.iter Pktbuf.retain owner;
  if Trace.Dpath.enabled () then
    Trace.Dpath.measure Trace.Dpath.Deliver ~vcpu_ns:0 (fun () -> push_rx fl payload owner)
  else push_rx fl payload owner

let rec integrate_ooo fl =
  match fl.ooo with
  | (seq, data, owner) :: rest when Seq.leq seq fl.rcv_nxt ->
    let skip = Seq.diff fl.rcv_nxt seq in
    if skip < Bytestruct.length data then begin
      let fresh = Bytestruct.shift data skip in
      let len = Bytestruct.length fresh in
      fl.rcv_nxt <- Seq.add fl.rcv_nxt len;
      rx_account fl len;
      (* The entry's pool reference transfers to the stream. *)
      push_rx fl fresh owner
    end
    else Option.iter Pktbuf.release owner;
    fl.ooo <- rest;
    integrate_ooo fl
  | _ -> ()

let insert_ooo fl seq data owner =
  (* Keep segments sorted; on an exact seq match keep the longer of the
     two (a retransmission may extend a previously stored segment); keep
     overlaps (they are trimmed during integration). Each stored entry
     holds its own pool reference; losers release theirs. *)
  let keep () =
    Option.iter Pktbuf.retain owner;
    owner
  in
  let rec ins = function
    | [] -> [ (seq, data, keep ()) ]
    | (s, d, o) :: rest when Seq.lt seq s -> (seq, data, keep ()) :: (s, d, o) :: rest
    | (s, d, o) :: rest when Seq.equal seq s ->
      if Bytestruct.length data > Bytestruct.length d then begin
        Option.iter Pktbuf.release o;
        (s, data, keep ()) :: rest
      end
      else (s, d, o) :: rest
    | (s, d, o) :: rest -> (s, d, o) :: ins rest
  in
  let inserted = ins fl.ooo in
  if List.length inserted > max_ooo_segments then begin
    (* Evict the highest-seq segment — furthest from the hole, last to be
       retransmitted. *)
    fl.t.ooo_evictions <- fl.t.ooo_evictions + 1;
    Trace.incr c_ooo_evict;
    fl.ooo <-
      (match List.rev inserted with
      | (_, _, o) :: keep_rev ->
        Option.iter Pktbuf.release o;
        List.rev keep_rev
      | [] -> [])
  end
  else fl.ooo <- inserted

let send_ack fl =
  send_segment fl.t ~key:fl.key ~seq:fl.snd_nxt ~ack:fl.rcv_nxt
    ~flags:{ Tcp_wire.flags_none with ack = true }
    ~options:[] ~window:(advertised_window fl) ~payload:(Bytestruct.create 0)

(* Deliver the pending GRO batch to the stream as one measured region.
   Accounting (rcv_nxt, rx_buffered) already happened at append; the
   flush only moves chunks and their references. ACKing is the caller's
   business — the normal per-segment ACK logic covers PSH/hole/FIN
   flushes, and only the timer flush ACKs here. *)
let gro_flush fl =
  (match fl.gro_timer with
  | Some h ->
    Engine.Sim.cancel h;
    fl.gro_timer <- None
  | None -> ());
  if fl.gro_pkts > 0 then begin
    let segs = List.rev fl.gro_rev in
    let pkts = fl.gro_pkts in
    fl.gro_rev <- [];
    fl.gro_bytes <- 0;
    fl.gro_pkts <- 0;
    if Trace.Dpath.enabled () then
      Trace.Dpath.measure Trace.Dpath.Deliver ~pkts ~vcpu_ns:0 (fun () ->
          List.iter (fun (v, o) -> push_rx fl v o) segs)
    else List.iter (fun (v, o) -> push_rx fl v o) segs
  end

let gro_timer_flush fl =
  fl.gro_timer <- None;
  if fl.gro_pkts > 0 && fl.state <> Closed then begin
    gro_flush fl;
    (* The batch's single deferred ACK. *)
    send_ack fl
  end

let gro_append fl payload owner =
  rx_account fl (Bytestruct.length payload);
  Option.iter Pktbuf.retain owner;
  fl.gro_rev <- (payload, owner) :: fl.gro_rev;
  fl.gro_bytes <- fl.gro_bytes + Bytestruct.length payload;
  fl.gro_pkts <- fl.gro_pkts + 1;
  if fl.gro_pkts > 1 then Trace.incr c_gro_merged;
  if fl.gro_timer = None then
    fl.gro_timer <-
      Some
        (Engine.Sim.schedule fl.t.sim ~delay:!gro_flush_delay_ns (fun () -> gro_timer_flush fl))

let enter_time_wait fl =
  fl.state <- Time_wait;
  cancel_rto fl;
  cancel_persist fl;
  release_rx_refs fl;
  (* Reaching TIME_WAIT means our FIN is acknowledged: [close]'s contract
     is satisfied now, not after the 2-MSL linger. *)
  (match fl.close_waker with
  | Some u when Mthread.Promise.wakener_pending u -> Mthread.Promise.wakeup u ()
  | _ -> ());
  ignore
    (Engine.Sim.schedule fl.t.sim ~delay:(2 * msl_ns) (fun () ->
         fl.state <- Closed;
         Hashtbl.remove fl.t.flows fl.key))

let finish_close fl =
  fl.state <- Closed;
  cancel_rto fl;
  cancel_persist fl;
  release_rx_refs fl;
  Hashtbl.remove fl.t.flows fl.key;
  match fl.close_waker with
  | Some u when Mthread.Promise.wakener_pending u -> Mthread.Promise.wakeup u ()
  | _ -> ()

let fin_acked fl = fl.fin_sent && Queue.is_empty fl.rtx && Seq.equal fl.snd_una fl.snd_nxt

(* [close]'s contract is "our direction is shut down and acknowledged";
   full teardown may wait on the peer's FIN indefinitely. *)
let wake_close fl =
  match fl.close_waker with
  | Some u when Mthread.Promise.wakener_pending u -> Mthread.Promise.wakeup u ()
  | _ -> ()

(* RFC 793 §3.9: take a window update only from a segment at least as
   recent as the one last used (SND.WL1/WL2), with an acceptable ack —
   under reordering, a stale segment must not shrink or reopen the
   window. *)
let update_snd_wnd fl (seg : Tcp_wire.segment) =
  if
    Seq.leq fl.snd_una seg.ack && Seq.leq seg.ack fl.snd_nxt
    && (Seq.lt fl.snd_wl1 seg.seq
       || (Seq.equal fl.snd_wl1 seg.seq && Seq.leq fl.snd_wl2 seg.ack))
  then begin
    let old_wnd = fl.snd_wnd in
    fl.snd_wnd <- seg.window lsl fl.snd_wscale;
    fl.snd_wl1 <- seg.seq;
    fl.snd_wl2 <- seg.ack;
    if old_wnd = 0 && fl.snd_wnd > 0 then begin
      (* Window reopened: back to the regular retransmit regime. *)
      cancel_persist fl;
      fl.persist_backoff_ns <- 0;
      fl.probes_out <- 0;
      if (not (Queue.is_empty fl.rtx)) && fl.rto_timer = None then arm_rto fl
    end
  end
  else Trace.incr c_wnd_stale

(* [owner] is the datagram's reference on the pool buffer backing
   [seg.payload] ([None] when the payload is a private copy); consumers
   that outlive this call (stream, reassembly, GRO batch) retain their
   own references — the datagram's is released by [handle_datagram]. *)
let rec handle_segment fl ?owner (seg : Tcp_wire.segment) =
  let t = fl.t in
  if seg.flags.Tcp_wire.rst then begin
    match fl.state with
    | Syn_sent -> fail_flow fl Connection_refused
    | _ -> fail_flow fl Connection_reset
  end
  else begin
    match fl.state with
    | Syn_sent when seg.flags.Tcp_wire.syn && seg.flags.Tcp_wire.ack ->
      if Seq.equal seg.ack fl.snd_nxt then begin
        List.iter
          (function
            | Tcp_wire.Mss m -> fl.mss <- min fl.mss m
            | Tcp_wire.Window_scale s -> fl.snd_wscale <- s)
          seg.options;
        fl.rcv_nxt <- Seq.add seg.seq 1;
        fl.snd_una <- seg.ack;
        (* The SYN-ACK window is never scaled (RFC 7323). *)
        fl.snd_wnd <- seg.window;
        fl.snd_wl1 <- seg.seq;
        fl.snd_wl2 <- seg.ack;
        Queue.clear fl.rtx;
        cancel_rto fl;
        fl.rto_ns <- initial_rto_ns;
        fl.state <- Established;
        fl.cwnd <- 10 * fl.mss;
        send_ack fl;
        match fl.connect_waker with
        | Some u when Mthread.Promise.wakener_pending u -> Mthread.Promise.wakeup u fl
        | _ -> ()
      end
      else send_rst_for t ~key:fl.key ~seq:seg.ack ~ack:Seq.zero
    | Syn_sent ->
      () (* simultaneous open not supported; ignore *)
    | Syn_rcvd when seg.flags.Tcp_wire.ack && Seq.equal seg.ack fl.snd_nxt ->
      fl.state <- Established;
      fl.snd_una <- seg.ack;
      fl.snd_wnd <- seg.window lsl fl.snd_wscale;
      fl.snd_wl1 <- seg.seq;
      fl.snd_wl2 <- seg.ack;
      Queue.clear fl.rtx;
      cancel_rto fl;
      fl.rto_ns <- initial_rto_ns;
      fl.cwnd <- 10 * fl.mss;
      (match Hashtbl.find_opt t.listeners fl.key.k_port with
      | Some accept_cb -> Mthread.Promise.async (fun () -> accept_cb fl)
      | None -> ());
      (* The ACK completing the handshake may carry data: fall through by
         re-processing below. *)
      if Bytestruct.length seg.payload > 0 || seg.flags.Tcp_wire.fin then
        handle_segment fl ?owner seg
    | Syn_rcvd -> ()
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack | Time_wait ->
      let old_wnd = fl.snd_wnd in
      if seg.flags.Tcp_wire.ack then begin
        update_snd_wnd fl seg;
        handle_ack fl ~old_wnd seg
      end;
      (* Data. Any data-bearing segment elicits an ACK — including stale
         retransmissions arriving after our receive side closed; without
         this, a sender whose final ACKs were lost retransmits forever. *)
      let paylen = Bytestruct.length seg.payload in
      let had_data = ref (paylen > 0) in
      if paylen > 0 && (fl.state = Established || fl.state = Fin_wait_1 || fl.state = Fin_wait_2)
      then begin
        if Seq.equal seg.seq fl.rcv_nxt then begin
          if !gro_enabled then begin
            (* Coalesce: park the segment; delivery and the ACK are
               deferred until a flush boundary. *)
            gro_append fl seg.payload owner;
            fl.rcv_nxt <- Seq.add fl.rcv_nxt paylen;
            if fl.ooo <> [] then begin
              (* This segment may have plugged the hole: drain the batch
                 first so reassembled data follows it in order. *)
              gro_flush fl;
              integrate_ooo fl
            end;
            if seg.flags.Tcp_wire.psh || fl.gro_bytes >= gro_max_bytes then gro_flush fl
            else if fl.gro_pkts > 0 then
              (* Pure coalesce: suppress the per-segment ACK — the flush
                 (PSH, hole, FIN or timer) acknowledges the batch. *)
              had_data := false
          end
          else begin
            deliver_rx fl ?owner seg.payload;
            fl.rcv_nxt <- Seq.add fl.rcv_nxt paylen;
            integrate_ooo fl
          end
        end
        else if Seq.gt seg.seq fl.rcv_nxt then begin
          (* A hole stops coalescing: deliver what we have, then let the
             normal path emit the duplicate ACK. *)
          if !gro_enabled then gro_flush fl;
          insert_ooo fl seg.seq seg.payload owner
        end
        (* else: pure duplicate, just re-ACK *)
      end;
      (* FIN. *)
      let fin_in_order =
        seg.flags.Tcp_wire.fin && Seq.equal (Seq.add seg.seq paylen) fl.rcv_nxt
      in
      if fin_in_order then begin
        if !gro_enabled then gro_flush fl;
        fl.rcv_nxt <- Seq.add fl.rcv_nxt 1;
        Mthread.Mstream.close fl.rx;
        (match fl.state with
        | Established -> fl.state <- Close_wait
        | Fin_wait_1 -> if fin_acked fl then enter_time_wait fl else fl.state <- Closing
        | Fin_wait_2 -> enter_time_wait fl
        | _ -> ());
        send_ack fl
      end
      else if !had_data || (seg.flags.Tcp_wire.fin && Seq.lt (Seq.add seg.seq paylen) fl.rcv_nxt)
      then send_ack fl;
      (* Our FIN's fate drives the closing states. *)
      (match fl.state with
      | Fin_wait_1 when fin_acked fl ->
        fl.state <- Fin_wait_2;
        wake_close fl
      | Closing when fin_acked fl -> enter_time_wait fl
      | Last_ack when fin_acked fl -> finish_close fl
      | _ -> ());
      try_output fl
    | Closed -> ()
  end

(* ---------- engine & demux ---------- *)

let make_flow t key state =
  let iss = Seq.of_int (Engine.Prng.int (Engine.Sim.prng t.sim) 0x10000000) in
  {
    t;
    key;
    state;
    snd_una = iss;
    snd_nxt = iss;
    snd_wnd = default_mss;
    snd_wl1 = Seq.zero;
    snd_wl2 = Seq.zero;
    snd_wscale = 0;
    mss = default_mss;
    cwnd = 10 * default_mss;
    ssthresh = max_int / 2;
    dupacks = 0;
    in_recovery = false;
    recover = iss;
    rto_recover = iss;
    rtx = Queue.create ();
    tx_chunks = Queue.create ();
    tx_head_off = 0;
    tx_buffered = 0;
    tx_waiters = Queue.create ();
    fin_queued = false;
    fin_sent = false;
    rcv_nxt = Seq.zero;
    rcv_wscale = our_wscale;
    rx_buffered = 0;
    ooo = [];
    rx = Mthread.Mstream.create ();
    rx_owners = Queue.create ();
    read_hold = None;
    gro_rev = [];
    gro_bytes = 0;
    gro_pkts = 0;
    gro_timer = None;
    rto_ns = initial_rto_ns;
    srtt_ns = 0;
    rttvar_ns = 0;
    rtt_probe = None;
    rto_timer = None;
    persist_timer = None;
    persist_backoff_ns = 0;
    probes_out = 0;
    connect_waker = None;
    close_waker = None;
    syn_tries = 0;
    rto_tries = 0;
    error = None;
    bytes_acked = 0;
    bytes_received = 0;
    created_ns = Engine.Sim.now t.sim;
    retx_count = 0;
  }

let handle_syn t ~src (seg : Tcp_wire.segment) =
  match Hashtbl.find_opt t.listeners seg.dst_port with
  | None ->
    send_rst_for t
      ~key:{ k_port = seg.dst_port; k_rip = src; k_rport = seg.src_port }
      ~seq:Seq.zero ~ack:(Seq.add seg.seq 1)
  | Some _ ->
    let key = { k_port = seg.dst_port; k_rip = src; k_rport = seg.src_port } in
    let fl = make_flow t key Syn_rcvd in
    List.iter
      (function
        | Tcp_wire.Mss m -> fl.mss <- min fl.mss m
        | Tcp_wire.Window_scale s -> fl.snd_wscale <- s)
      seg.options;
    fl.rcv_nxt <- Seq.add seg.seq 1;
    fl.snd_wnd <- seg.window;
    fl.snd_wl1 <- seg.seq;
    fl.snd_wl2 <- Seq.zero;
    Hashtbl.replace t.flows key fl;
    let entry =
      {
        e_seq = fl.snd_nxt;
        e_len = 1;
        e_payload = Bytestruct.create 0;
        e_syn = true;
        e_fin = false;
        e_sent_at = Engine.Sim.now t.sim;
        e_retx = false;
        e_flow = (if Trace.enabled () then Trace.Flow.current () else Trace.Flow.none);
      }
    in
    Queue.add entry fl.rtx;
    fl.snd_nxt <- Seq.add fl.snd_nxt 1;
    send_segment t ~key ~seq:entry.e_seq ~ack:fl.rcv_nxt
      ~flags:{ Tcp_wire.flags_none with syn = true; ack = true }
      ~options:[ Tcp_wire.Mss default_mss; Tcp_wire.Window_scale our_wscale ]
      ~window:(min 0xffff rcv_wnd_bytes) ~payload:entry.e_payload;
    arm_rto fl

let handle_datagram t ~src ~dst ~payload =
  match Tcp_wire.decode ~src ~dst payload with
  | Error _ -> ()
  | Ok seg ->
    t.segs_received <- t.segs_received + 1;
    (* The payload view aliases a driver buffer recycled when this
       callback returns. On the pooled fast path, take a reference
       instead of copying — processing is deferred behind the vCPU
       charge, and the reference keeps the page pinned until then. Only
       frames from outside the pool (loopback, raw injectors, tests)
       still pay the defensive copy. *)
    let paylen = Bytestruct.length seg.Tcp_wire.payload in
    let owner = if paylen > 0 then Pktbuf.retain_current () else None in
    let seg =
      match owner with
      | Some _ -> seg
      | None ->
        if paylen > 0 then { seg with Tcp_wire.payload = Bytestruct.copy seg.Tcp_wire.payload }
        else seg
    in
    let process () =
      let key = { k_port = seg.dst_port; k_rip = src; k_rport = seg.src_port } in
      (match Hashtbl.find_opt t.flows key with
      | Some fl -> handle_segment fl ?owner seg
      | None ->
        if seg.flags.Tcp_wire.syn && not seg.flags.Tcp_wire.ack then handle_syn t ~src seg
        else if not seg.flags.Tcp_wire.rst then
          send_rst_for t ~key ~seq:seg.ack ~ack:(Seq.add seg.seq (Bytestruct.length seg.payload)));
      Option.iter Pktbuf.release owner
    in
    (match t.dom with
    | None -> process ()
    | Some d ->
      let cost =
        if Bytestruct.length seg.Tcp_wire.payload > 0 then
          d.Xensim.Domain.platform.Platform.tcp_rx_extra_ns
        else d.Xensim.Domain.platform.Platform.tcp_ack_extra_ns
      in
      (* Datapath hop: the deferred segment processing runs top-of-stack,
         so its allocation region nests nothing but [deliver_rx]. *)
      let process () =
        if Trace.Dpath.enabled () then
          Trace.Dpath.measure Trace.Dpath.Tcp ~vcpu_ns:cost process
        else process ()
      in
      let charge () =
        if Trace.enabled () then begin
          let queued = Engine.Sim.now t.sim in
          Xensim.Domain.charge_k d ~cost (fun () ->
              (* Retro-span covering queue-for-vCPU + segment processing,
                 so the flow's TCP-layer time is attributable offline. *)
              if Trace.enabled () then
                Trace.record_span_ns ~dom:d.Xensim.Domain.id ~cat:Trace.Net "tcp.rx"
                  (Engine.Sim.now t.sim - queued);
              process ())
        end
        else Xensim.Domain.charge_k d ~cost process
      in
      if Trace.Prof.enabled () then Trace.Prof.with_frame "tcp" charge else charge ())

let create sim ?dom ip =
  let t =
    {
      sim;
      ip;
      wheel = Engine.Timerwheel.create sim;
      dom;
      flows = Hashtbl.create 64;
      listeners = Hashtbl.create 8;
      next_ephemeral = 32768;
      segs_sent = 0;
      segs_received = 0;
      retransmissions = 0;
      fast_retransmits = 0;
      rto_fires = 0;
      persist_probes = 0;
      ooo_evictions = 0;
    }
  in
  Ipv4.set_handler ip ~proto:Ipv4.proto_tcp (fun ~src ~dst ~payload ->
      handle_datagram t ~src ~dst ~payload);
  (if Trace.Metrics.enabled () then
     match dom with
     | None -> ()
     | Some d ->
       (* Pull metrics over stats the engine already maintains: the
          send/retransmit fast paths are untouched. *)
       let dom = d.Xensim.Domain.id in
       let reg name read = Trace.Metrics.register_read ~dom ~kind:Trace.Metrics.Counter name read in
       reg "tcp_segs_sent" (fun () -> t.segs_sent);
       reg "tcp_segs_received" (fun () -> t.segs_received);
       reg "tcp_retransmissions" (fun () -> t.retransmissions);
       reg "tcp_fast_retransmits" (fun () -> t.fast_retransmits);
       reg "tcp_rto_fires" (fun () -> t.rto_fires);
       reg "tcp_persist_probes" (fun () -> t.persist_probes);
       Trace.Metrics.register_read ~dom ~kind:Trace.Metrics.Gauge "tcp_active_flows" (fun () ->
           Hashtbl.length t.flows);
       Trace.Metrics.register_read ~dom ~kind:Trace.Metrics.Gauge "tcp_flows_established"
         (fun () ->
           Hashtbl.fold (fun _ fl n -> if fl.state = Established then n + 1 else n) t.flows 0);
       Trace.Metrics.register_read ~dom ~kind:Trace.Metrics.Gauge "tcp_listen_ports" (fun () ->
           Hashtbl.length t.listeners));
  t

let listen t ~port f = Hashtbl.replace t.listeners port f
let unlisten t ~port = Hashtbl.remove t.listeners port

let connect t ~dst ~dst_port =
  let open Mthread.Promise in
  let rec fresh_port () =
    let p = t.next_ephemeral in
    t.next_ephemeral <- (if t.next_ephemeral >= 60999 then 32768 else t.next_ephemeral + 1);
    if Hashtbl.mem t.flows { k_port = p; k_rip = dst; k_rport = dst_port } then fresh_port ()
    else p
  in
  let key = { k_port = fresh_port (); k_rip = dst; k_rport = dst_port } in
  let fl = make_flow t key Syn_sent in
  Hashtbl.replace t.flows key fl;
  let p, u = wait () in
  fl.connect_waker <- Some u;
  let entry =
    {
      e_seq = fl.snd_nxt;
      e_len = 1;
      e_payload = Bytestruct.create 0;
      e_syn = true;
      e_fin = false;
      e_sent_at = Engine.Sim.now t.sim;
      e_retx = false;
      e_flow = (if Trace.enabled () then Trace.Flow.current () else Trace.Flow.none);
    }
  in
  Queue.add entry fl.rtx;
  fl.snd_nxt <- Seq.add fl.snd_nxt 1;
  send_segment t ~key ~seq:entry.e_seq ~ack:Seq.zero
    ~flags:{ Tcp_wire.flags_none with syn = true }
    ~options:[ Tcp_wire.Mss default_mss; Tcp_wire.Window_scale our_wscale ]
    ~window:(min 0xffff rcv_wnd_bytes) ~payload:entry.e_payload;
  arm_rto fl;
  p

(* ---------- flow API ---------- *)

let read fl =
  Mthread.Promise.bind (Mthread.Mstream.next fl.rx) (function
    | Some c as chunk ->
      (* The previous chunk's pool reference drops now: a returned chunk
         is valid until the next [read] (the Device_sig contract). *)
      Option.iter Pktbuf.release fl.read_hold;
      fl.read_hold <- (match Queue.take_opt fl.rx_owners with Some o -> o | None -> None);
      let free_before = rcv_wnd_bytes - fl.rx_buffered in
      fl.rx_buffered <- max 0 (fl.rx_buffered - Bytestruct.length c);
      let free_after = rcv_wnd_bytes - fl.rx_buffered in
      (* Receiver-side SWS avoidance: announce the reopened window only
         once a full segment fits again. The peer's persist probes back
         this up if the update ACK is lost. *)
      (match fl.state with
      | Established | Fin_wait_1 | Fin_wait_2 ->
        if free_before < fl.mss && free_after >= fl.mss then send_ack fl
      | _ -> ());
      Mthread.Promise.return chunk
    | None ->
      Option.iter Pktbuf.release fl.read_hold;
      fl.read_hold <- None;
      Mthread.Promise.return None)

let write fl buf =
  let open Mthread.Promise in
  match fl.error with
  | Some e -> fail e
  | None ->
    if fl.fin_queued then fail (Invalid_argument "Tcp.write: flow closed for sending")
    else begin
      let rec wait_for_room () =
        if fl.tx_buffered >= snd_buf_bytes then begin
          let p, u = wait () in
          Queue.add u fl.tx_waiters;
          bind p (fun () -> wait_for_room ())
        end
        else begin
          (* Ownership transfer: the stack queues the caller's buffer
             directly — no defensive copy — so the caller must not
             mutate it after [write]. Segmentation views alias it until
             the bytes are acknowledged. *)
          Queue.add buf fl.tx_chunks;
          fl.tx_buffered <- fl.tx_buffered + Bytestruct.length buf;
          try_output fl;
          return ()
        end
      in
      wait_for_room ()
    end

let close fl =
  let open Mthread.Promise in
  match fl.state with
  | Closed | Time_wait -> return ()
  | _ ->
    if not fl.fin_queued then begin
      fl.fin_queued <- true;
      (match fl.state with
      | Established -> fl.state <- Fin_wait_1
      | Close_wait -> fl.state <- Last_ack
      | _ -> ());
      try_output fl
    end;
    let p, u = wait () in
    fl.close_waker <- Some u;
    if fl.state = Closed then return () else p

let abort fl =
  if fl.state <> Closed then begin
    send_rst_for fl.t ~key:fl.key ~seq:fl.snd_nxt ~ack:fl.rcv_nxt;
    fail_flow fl Connection_reset
  end

let remote fl = (fl.key.k_rip, fl.key.k_rport)
let local_port fl = fl.key.k_port

let state_name fl =
  match fl.state with
  | Syn_sent -> "SYN_SENT"
  | Syn_rcvd -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST_ACK"
  | Time_wait -> "TIME_WAIT"
  | Closed -> "CLOSED"

let bytes_acked fl = fl.bytes_acked
let bytes_received fl = fl.bytes_received
let cwnd fl = fl.cwnd

(* ---------- socket-table introspection (the `ss` plane) ---------- *)

type sock_info = {
  si_state : string;
  si_local_port : int;
  si_peer : (Ipaddr.t * int) option;  (* None for LISTEN rows *)
  si_recv_q : int;
  si_send_q : int;
  si_cwnd : int;
  si_ssthresh : int;
  si_srtt_ns : int;
  si_rto_ns : int;
  si_retx : int;
  si_age_ns : int;
}

(* One row per bound listener plus one per flow, deterministically sorted
   (local port, then peer) — hash-table iteration order must never leak
   into output that goldens or CLIs print. *)
let sockets t =
  let now = Engine.Sim.now t.sim in
  let listens =
    Hashtbl.fold
      (fun port _ acc ->
        {
          si_state = "LISTEN";
          si_local_port = port;
          si_peer = None;
          si_recv_q = 0;
          si_send_q = 0;
          si_cwnd = 0;
          si_ssthresh = 0;
          si_srtt_ns = 0;
          si_rto_ns = 0;
          si_retx = 0;
          si_age_ns = 0;
        }
        :: acc)
      t.listeners []
  in
  let flows =
    Hashtbl.fold
      (fun key fl acc ->
        {
          si_state = state_name fl;
          si_local_port = key.k_port;
          si_peer = Some (key.k_rip, key.k_rport);
          si_recv_q = fl.rx_buffered;
          (* send-q as ss reports it: bytes accepted from the writer and
             not yet acknowledged — buffered chunks plus bytes in flight. *)
          si_send_q = fl.tx_buffered + flight_size fl;
          si_cwnd = fl.cwnd;
          si_ssthresh = fl.ssthresh;
          si_srtt_ns = fl.srtt_ns;
          si_rto_ns = fl.rto_ns;
          si_retx = fl.retx_count;
          si_age_ns = now - fl.created_ns;
        }
        :: acc)
      t.flows []
  in
  List.sort
    (fun a b ->
      match compare a.si_local_port b.si_local_port with
      | 0 -> compare a.si_peer b.si_peer
      | c -> c)
    (listens @ flows)

let segments_sent t = t.segs_sent
let segments_received t = t.segs_received
let retransmissions t = t.retransmissions
let fast_retransmits t = t.fast_retransmits
let rto_fires t = t.rto_fires
let persist_probes t = t.persist_probes
let ooo_evictions t = t.ooo_evictions
let active_flows t = Hashtbl.length t.flows
