let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17
let header_bytes = 20

type config = { address : Ipaddr.t; netmask : Ipaddr.t; gateway : Ipaddr.t option }

type handler = src:Ipaddr.t -> dst:Ipaddr.t -> payload:Bytestruct.t -> unit

type t = {
  sim : Engine.Sim.t;
  eth : Ethernet.t;
  arp : Arp.t;
  mutable cfg : config;
  handlers : (int, handler) Hashtbl.t;
  mutable ident : int;
  mutable sent : int;
  mutable received : int;
  mutable checksum_failures : int;
}

let create sim eth arp cfg =
  let t =
    {
      sim;
      eth;
      arp;
      cfg;
      handlers = Hashtbl.create 4;
      ident = 1;
      sent = 0;
      received = 0;
      checksum_failures = 0;
    }
  in
  Ethernet.set_handler eth ~ethertype:Ethernet.ethertype_ipv4 (fun ~src:_ ~dst:_ ~payload ->
      t.received <- t.received + 1;
      if Bytestruct.length payload < header_bytes then
        t.checksum_failures <- t.checksum_failures + 1
      else begin
        let vihl = Bytestruct.get_uint8 payload 0 in
        let ihl = (vihl land 0xf) * 4 in
        let total_len = Bytestruct.BE.get_uint16 payload 2 in
        if
          vihl lsr 4 <> 4
          || ihl < header_bytes
          || total_len > Bytestruct.length payload
          || Checksum.ones_complement (Bytestruct.sub payload 0 ihl) <> 0
        then t.checksum_failures <- t.checksum_failures + 1
        else begin
          let proto = Bytestruct.get_uint8 payload 9 in
          let src = Ipaddr.get payload 12 in
          let dst = Ipaddr.get payload 16 in
          let body = Bytestruct.sub payload ihl (total_len - ihl) in
          let for_us =
            Ipaddr.equal dst t.cfg.address
            || Ipaddr.equal dst Ipaddr.broadcast
            || Ipaddr.equal t.cfg.address Ipaddr.any (* unconfigured: DHCP listens *)
          in
          if for_us then
            match Hashtbl.find_opt t.handlers proto with
            | Some f ->
              if Trace.Prof.enabled () || Trace.Dpath.enabled () then
                Trace.Prof.with_frame "ip" (fun () ->
                    if Trace.Dpath.enabled () then
                      Trace.Dpath.measure Trace.Dpath.Ip ~vcpu_ns:0 (fun () ->
                          f ~src ~dst ~payload:body)
                    else f ~src ~dst ~payload:body)
              else f ~src ~dst ~payload:body
            | None -> ()
        end
      end);
  t

let address t = t.cfg.address
let config t = t.cfg

let set_config t cfg =
  t.cfg <- cfg;
  Arp.set_ip t.arp cfg.address

let set_handler t ~proto f = Hashtbl.replace t.handlers proto f

let payload_mtu t = Ethernet.mtu t.eth - header_bytes

let build_header t ~dst ~proto ~payload_len =
  let h = Bytestruct.create header_bytes in
  Bytestruct.set_uint8 h 0 0x45;
  Bytestruct.set_uint8 h 1 0;
  Bytestruct.BE.set_uint16 h 2 (header_bytes + payload_len);
  Bytestruct.BE.set_uint16 h 4 t.ident;
  t.ident <- (t.ident + 1) land 0xffff;
  Bytestruct.BE.set_uint16 h 6 0x4000 (* DF *);
  Bytestruct.set_uint8 h 8 64 (* TTL *);
  Bytestruct.set_uint8 h 9 proto;
  Bytestruct.BE.set_uint16 h 10 0;
  Ipaddr.set h 12 t.cfg.address;
  Ipaddr.set h 16 dst;
  Bytestruct.BE.set_uint16 h 10 (Checksum.ones_complement h);
  h

let next_hop t dst =
  match t.cfg.gateway with
  | Some gw when not (Ipaddr.same_subnet ~netmask:t.cfg.netmask t.cfg.address dst) -> gw
  | _ -> dst

let output t ~dst ~proto fragments =
  let open Mthread.Promise in
  let payload_len = Bytestruct.lenv fragments in
  if payload_len > payload_mtu t then invalid_arg "Ipv4.output: payload exceeds MTU";
  let header = build_header t ~dst ~proto ~payload_len in
  t.sent <- t.sent + 1;
  if Ipaddr.equal dst Ipaddr.broadcast then
    Ethernet.output t.eth ~dst:Macaddr.broadcast ~ethertype:Ethernet.ethertype_ipv4
      (header :: fragments)
  else
    bind (Arp.resolve t.arp (next_hop t dst)) (fun mac ->
        Ethernet.output t.eth ~dst:mac ~ethertype:Ethernet.ethertype_ipv4 (header :: fragments))

let packets_sent t = t.sent
let packets_received t = t.received
let checksum_failures t = t.checksum_failures
