(** UDP: datagram send/receive with per-port listeners.

    Each bound port carries a little introspection state (datagram counts,
    bind time, last activity) so {!sockets} can answer the same "what is
    bound and how busy is it?" question {!Tcp.sockets} answers for
    connections. When [dom] is given and the metrics plane is on, engine
    totals are exported as pull metrics
    ([udp_datagrams_sent]/[_received], [udp_checksum_failures],
    [udp_no_listener], [udp_bound_ports]). *)

type t

type callback =
  src:Ipaddr.t -> src_port:int -> dst_port:int -> payload:Bytestruct.t -> unit

val create : Engine.Sim.t -> ?dom:Xensim.Domain.t -> Ipv4.t -> t

(** [listen t ~port f] registers [f] for datagrams to [port]; replaces any
    previous listener (resetting that port's introspection counters). *)
val listen : t -> port:int -> callback -> unit

val unlisten : t -> port:int -> unit

(** [sendto t ~src_port ~dst ~dst_port payload]. *)
val sendto :
  t -> src_port:int -> dst:Ipaddr.t -> dst_port:int -> Bytestruct.t -> unit Mthread.Promise.t

val datagrams_sent : t -> int
val datagrams_received : t -> int
val checksum_failures : t -> int

(** Datagrams for ports nobody listens on. *)
val no_listener : t -> int

(** {1 Socket-table introspection} *)

(** One bound port. [si_tx_datagrams] counts {!sendto} calls whose source
    port is this bound port (an unbound source port still sends, it just
    is not attributed to a socket row). *)
type sock_info = {
  si_local_port : int;
  si_rx_datagrams : int;  (** delivered to this port's listener *)
  si_tx_datagrams : int;  (** sent with this as source port *)
  si_age_ns : int;  (** virtual time since {!listen} *)
  si_idle_ns : int;  (** virtual time since last send or delivery *)
}

(** All bound ports, sorted by port so output is deterministic. *)
val sockets : t -> sock_info list
