(* Kept as a thin alias of the backend-agnostic Device_sig.Reader: the
   buffering logic moved there so functorized protocol parsers can read
   from any Device_sig.FLOW, while existing netstack users keep the old
   [create : Tcp.flow -> t] entry point. *)

type t = Device_sig.Reader.t

let create flow = Device_sig.Reader.create ~read:(fun () -> Tcp.read flow)
let line = Device_sig.Reader.line
let exactly = Device_sig.Reader.exactly
let block_crlf = Device_sig.Reader.block_crlf
let buffered = Device_sig.Reader.buffered
let eof = Device_sig.Reader.eof
