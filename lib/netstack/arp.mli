(** ARP: IPv4-to-MAC resolution with a cache, request retransmission and
    gratuitous announcement. *)

type t

exception Resolution_failed of Ipaddr.t

val create : Engine.Sim.t -> Ethernet.t -> ip:Ipaddr.t -> t

(** Change the protocol address (after DHCP), announcing gratuitously. *)
val set_ip : t -> Ipaddr.t -> unit

(** [resolve t ip] returns the MAC, querying the network on a cache miss
    (3 retries, 1 s apart). @raise Resolution_failed (in the promise). *)
val resolve : t -> Ipaddr.t -> Macaddr.t Mthread.Promise.t

(** Peek at the cache without generating traffic. *)
val cached : t -> Ipaddr.t -> Macaddr.t option

(** [add_static t ~ip ~mac] seeds the cache without generating traffic
    (an /etc/ethers-style static entry); also wakes any waiter already
    blocked in {!resolve} for [ip]. *)
val add_static : t -> ip:Ipaddr.t -> mac:Macaddr.t -> unit

(** Broadcast a gratuitous ARP for our address. *)
val announce : t -> unit Mthread.Promise.t

val cache_size : t -> int
val requests_sent : t -> int
val replies_sent : t -> int
