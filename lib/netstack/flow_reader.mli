(** Buffered reading over a TCP flow: lines and counted blocks. The
    channel-iteratee bridge between packet streams and typed protocol
    streams (paper §3.5) that the HTTP and memcache parsers share.

    The implementation lives in {!Device_sig.Reader} (it works over any
    [FLOW]); this module pins it to netstack TCP flows. *)

type t = Device_sig.Reader.t

val create : Tcp.flow -> t

(** Next CRLF- (or bare-LF-) terminated line, without the terminator;
    [None] at end-of-stream. *)
val line : t -> string option Mthread.Promise.t

(** Exactly [n] bytes; [None] if the stream ends first. *)
val exactly : t -> int -> string option Mthread.Promise.t

(** Like {!exactly} but also consumes a trailing CRLF (memcache framing). *)
val block_crlf : t -> int -> string option Mthread.Promise.t

(** Bytes buffered but not yet consumed. *)
val buffered : t -> int

val eof : t -> bool
