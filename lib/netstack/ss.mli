(** `ss`-style rendering of a stack's TCP + UDP socket tables — the
    operator's "what connections does this appliance have, in what
    state?" view. Columns: Netid, State, Recv-Q, Send-Q, Local, Peer,
    then per-protocol detail (cwnd/ssthresh/srtt/rto/retx/age for TCP
    flows, rx/tx/idle/age for bound UDP ports). Rows come from
    {!Tcp.sockets} and {!Udp.sockets} and are deterministically
    ordered. *)

(** The column-header line (no trailing newline). *)
val header : string

(** [tcp_row local si] — one rendered row; [local] is the stack's own
    address as a string. *)
val tcp_row : string -> Tcp.sock_info -> string

val udp_row : string -> Udp.sock_info -> string

(** The full table, header first, one socket per line. *)
val render : Stack.t -> string

(** Human rendering of a nanosecond duration ([12us], [3.4ms], [1.20s]). *)
val ns_str : int -> string
