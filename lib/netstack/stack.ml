type t = {
  eth : Ethernet.t;
  arp : Arp.t;
  ip : Ipv4.t;
  icmp : Icmp4.t;
  udp : Udp.t;
  tcp : Tcp.t;
}

type ip_config = Static of Ipv4.config | Dhcp

let create sim ?dom ?(announce = true) ~netif config =
  let open Mthread.Promise in
  let eth = Ethernet.create netif in
  let initial =
    match config with
    | Static cfg -> cfg
    | Dhcp -> { Ipv4.address = Ipaddr.any; netmask = Ipaddr.any; gateway = None }
  in
  let arp = Arp.create sim eth ~ip:initial.Ipv4.address in
  let ip = Ipv4.create sim eth arp initial in
  let icmp = Icmp4.create sim ?dom ip in
  let udp = Udp.create sim ?dom ip in
  let tcp = Tcp.create sim ?dom ip in
  let t = { eth; arp; ip; icmp; udp; tcp } in
  match config with
  | Static _ when not announce -> return t
  | Static _ -> bind (Arp.announce arp) (fun () -> return t)
  | Dhcp ->
    bind (Dhcp.Client.acquire sim udp ~mac:(Ethernet.mac eth)) (fun lease ->
        Ipv4.set_config ip
          {
            Ipv4.address = lease.Dhcp.address;
            netmask = lease.Dhcp.netmask;
            gateway = lease.Dhcp.gateway;
          };
        return t)

let ethernet t = t.eth
let arp t = t.arp
let ipv4 t = t.ip
let icmp t = t.icmp
let udp t = t.udp
let tcp t = t.tcp
let address t = Ipv4.address t.ip
let mac t = Ethernet.mac t.eth
