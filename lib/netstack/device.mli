(** The unikernel netstack, viewed through the {!Device_sig} contracts.

    [Device.Tcp]/[Device.Udp] are the netstack's own engines ascribed to
    [Device_sig.TCP]/[Device_sig.UDP] — the configure-time modules that
    [Core.Apps.Net] feeds to the application functors for the
    [Posix_direct] and [Xen_direct] targets. The [with type] equalities
    keep them interchangeable with the underlying {!Tcp}/{!Udp} values,
    so a harness can still reach engine statistics through the concrete
    modules. *)

module Tcp :
  Device_sig.TCP with type t = Tcp.t and type flow = Tcp.flow and type ipaddr = Ipaddr.t

module Udp : Device_sig.UDP with type t = Udp.t and type ipaddr = Ipaddr.t

(** {!Stack.t} as a {!Device_sig.STACK}-shaped bundle. *)
type t = Stack.t

type ipaddr = Ipaddr.t

val tcp : t -> Tcp.t
val udp : t -> Udp.t
val address : t -> Ipaddr.t
