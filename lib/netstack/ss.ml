(* Render the TCP + UDP socket tables the way `ss -tuoni` would: one row
   per socket with queue depths and per-protocol detail in an info
   column. Shared by the `mirage_sim ss` CLI and the tests that assert
   the rendered table matches the state machine's actual state. *)

let ns_str ns =
  if ns < 1_000_000 then Printf.sprintf "%dus" (ns / 1000)
  else if ns < 1_000_000_000 then Printf.sprintf "%.1fms" (float_of_int ns /. 1e6)
  else Printf.sprintf "%.2fs" (float_of_int ns /. 1e9)

let header = Printf.sprintf "%-5s %-12s %6s %7s %-21s %-21s %s" "Netid" "State" "Recv-Q" "Send-Q" "Local" "Peer" "Info"

let tcp_row local (si : Tcp.sock_info) =
  let peer =
    match si.Tcp.si_peer with
    | None -> "*:*"
    | Some (ip, port) -> Printf.sprintf "%s:%d" (Ipaddr.to_string ip) port
  in
  let info =
    match si.Tcp.si_peer with
    | None -> ""
    | Some _ ->
      Printf.sprintf "cwnd:%d ssthresh:%s srtt:%s rto:%s retx:%d age:%s" si.Tcp.si_cwnd
        (if si.Tcp.si_ssthresh >= max_int / 2 then "inf" else string_of_int si.Tcp.si_ssthresh)
        (ns_str si.Tcp.si_srtt_ns) (ns_str si.Tcp.si_rto_ns) si.Tcp.si_retx
        (ns_str si.Tcp.si_age_ns)
  in
  Printf.sprintf "%-5s %-12s %6d %7d %-21s %-21s %s" "tcp" si.Tcp.si_state si.Tcp.si_recv_q
    si.Tcp.si_send_q
    (Printf.sprintf "%s:%d" local si.Tcp.si_local_port)
    peer info

let udp_row local (si : Udp.sock_info) =
  let info =
    Printf.sprintf "rx:%d tx:%d idle:%s age:%s" si.Udp.si_rx_datagrams si.Udp.si_tx_datagrams
      (ns_str si.Udp.si_idle_ns) (ns_str si.Udp.si_age_ns)
  in
  Printf.sprintf "%-5s %-12s %6s %7s %-21s %-21s %s" "udp" "UNCONN" "-" "-"
    (Printf.sprintf "%s:%d" local si.Udp.si_local_port)
    "*:*" info

let render stack =
  let local = Ipaddr.to_string (Stack.address stack) in
  let b = Buffer.create 512 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  List.iter
    (fun si ->
      Buffer.add_string b (tcp_row local si);
      Buffer.add_char b '\n')
    (Tcp.sockets (Stack.tcp stack));
  List.iter
    (fun si ->
      Buffer.add_string b (udp_row local si);
      Buffer.add_char b '\n')
    (Udp.sockets (Stack.udp stack));
  Buffer.contents b
