let ethertype_ipv4 = 0x0800
let ethertype_arp = 0x0806
let header_bytes = 14

type handler = src:Macaddr.t -> dst:Macaddr.t -> payload:Bytestruct.t -> unit

type t = {
  netif : Devices.Netif.t;
  handlers : (int, handler) Hashtbl.t;
  mutable unknown : int;
}

let handle t frame =
  if Bytestruct.length frame >= header_bytes then begin
    let dst = Macaddr.get frame 0 in
    let src = Macaddr.get frame 6 in
    let ethertype = Bytestruct.BE.get_uint16 frame 12 in
    let payload = Bytestruct.shift frame header_bytes in
    match Hashtbl.find_opt t.handlers ethertype with
    | Some f -> f ~src ~dst ~payload
    | None -> t.unknown <- t.unknown + 1
  end

let create netif =
  let t = { netif; handlers = Hashtbl.create 4; unknown = 0 } in
  Devices.Netif.set_listener netif (fun frame -> handle t frame);
  t

let mac t = Macaddr.of_bytes (Devices.Netif.mac t.netif)
let mtu t = Devices.Netif.mtu t.netif

let set_handler t ~ethertype f = Hashtbl.replace t.handlers ethertype f

let output t ~dst ~ethertype fragments =
  let payload_len = Bytestruct.lenv fragments in
  if payload_len > Devices.Netif.mtu t.netif then
    invalid_arg "Ethernet.output: payload exceeds MTU";
  (* Assemble header + fragments into a pooled transmit buffer, and hand
     the driver ownership: the buffer returns to the pool on the TX
     response once the wire no longer references it — never while the
     frame is still in flight on the simulated link. *)
  let pb = Pktbuf.alloc (Devices.Netif.pool t.netif) in
  let frame = Pktbuf.view pb ~off:0 ~len:(header_bytes + payload_len) in
  Macaddr.set frame 0 dst;
  Macaddr.set frame 6 (mac t);
  Bytestruct.BE.set_uint16 frame 12 ethertype;
  let _ =
    List.fold_left
      (fun off frag ->
        Bytestruct.blit frag 0 frame off (Bytestruct.length frag);
        off + Bytestruct.length frag)
      header_bytes fragments
  in
  Devices.Netif.write ~owner:pb t.netif frame

let unknown_frames t = t.unknown
