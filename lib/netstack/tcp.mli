(** TCP (paper §4.1.3): the full connection lifecycle, retransmission with
    Jacobson/Karn RTO estimation, fast retransmit and recovery, New Reno
    congestion control, and window scaling — in type-safe OCaml over
    {!Ipv4}.

    Flow control is real: the advertised window is the receive buffer
    minus bytes delivered to the application stream but not yet read, so a
    stalled reader closes the window, and a persist timer (RFC 1122
    4.2.2.17) probes a zero window with 1-byte segments on exponential
    backoff so lost window-update ACKs cannot deadlock either side.
    Window updates are gated by the RFC 793 §3.9 SND.WL1/WL2 recency
    check, and the out-of-order reassembly list is capped at 128 segments
    (furthest-seq evicted first).

    Divergences from deployed stacks, chosen for deterministic simulation:
    every data segment is acknowledged immediately (no delayed-ACK timer),
    and TIME_WAIT lasts 2 s (2 x a 1 s MSL). *)

type t

type flow

exception Connection_refused
exception Connection_reset

(** [create sim ?dom ip] attaches a TCP engine to an IPv4 layer. When [dom]
    is given, per-segment processing is charged to that domain's vCPU
    using its platform's [tcp_tx_extra_ns]/[tcp_rx_extra_ns]. *)
val create : Engine.Sim.t -> ?dom:Xensim.Domain.t -> Ipv4.t -> t

(** [listen t ~port f] accepts connections on [port], spawning [f] per
    established flow. *)
val listen : t -> port:int -> (flow -> unit Mthread.Promise.t) -> unit

val unlisten : t -> port:int -> unit

(** Active open. The promise fails with {!Connection_refused} on RST and
    [Mthread.Promise.Timeout] when SYN retransmission gives up. *)
val connect : t -> dst:Ipaddr.t -> dst_port:int -> flow Mthread.Promise.t

(** {1 Flow I/O} *)

(** [read fl] blocks for the next chunk; [None] at end-of-stream. The
    chunk may be a zero-copy view over a pooled driver page and is
    valid until the next [read] on the same flow — consume or copy it
    before reading again. *)
val read : flow -> Bytestruct.t option Mthread.Promise.t

(** [write fl buf] queues bytes for transmission, blocking while the send
    buffer is full. Ownership of [buf] transfers to the stack: the bytes
    are segmented by reference where possible, so the caller must not
    mutate [buf] after this call. Fails with {!Connection_reset} after a
    RST. *)
val write : flow -> Bytestruct.t -> unit Mthread.Promise.t

(** Half-close our direction (sends FIN after queued data). *)
val close : flow -> unit Mthread.Promise.t

(** Abortive close (RST). *)
val abort : flow -> unit

val remote : flow -> Ipaddr.t * int
val local_port : flow -> int
val state_name : flow -> string

(** Bytes acked by the peer — the iperf measurement hook. *)
val bytes_acked : flow -> int

val bytes_received : flow -> int
val cwnd : flow -> int

(** {1 GRO-style receive coalescing}

    [set_gro on] parks contiguous in-order segments per flow and
    delivers (and acknowledges) them as one batch when a PSH arrives, a
    sequence hole opens, the batch reaches 64 KB, or [flush_delay_ns]
    (default 100 µs) elapses. Off by default: per-segment immediate
    delivery and ACKing is what every committed figure assumes. Global,
    like the netif doorbell-coalescing knob. *)

val set_gro : ?flush_delay_ns:int -> bool -> unit

(** {1 Socket-table introspection}

    The `ss`-style view of the engine: one row per bound listener and one
    per live flow, with the state machine's actual state and the queue,
    congestion and retransmission detail an operator would ask a running
    appliance for. Pure reads over state the engine already maintains —
    nothing on the segment path changes. *)

type sock_info = {
  si_state : string;  (** ["LISTEN"], ["ESTABLISHED"], … (see {!state_name}) *)
  si_local_port : int;
  si_peer : (Ipaddr.t * int) option;  (** [None] for LISTEN rows *)
  si_recv_q : int;  (** bytes delivered to the stream, not yet read *)
  si_send_q : int;  (** bytes accepted from the writer, not yet acked *)
  si_cwnd : int;  (** congestion window, bytes *)
  si_ssthresh : int;  (** slow-start threshold, bytes *)
  si_srtt_ns : int;  (** smoothed RTT (0 until first sample) *)
  si_rto_ns : int;  (** current retransmission timeout *)
  si_retx : int;  (** segments this flow has retransmitted *)
  si_age_ns : int;  (** virtual time since the flow was created *)
}

(** All rows, sorted by (local port, peer) so output is deterministic. *)
val sockets : t -> sock_info list

(** {1 Engine statistics} *)

val segments_sent : t -> int
val segments_received : t -> int
val retransmissions : t -> int
val fast_retransmits : t -> int
val rto_fires : t -> int

(** Zero-window probes sent by the persist timer. *)
val persist_probes : t -> int

(** Out-of-order segments evicted because the reassembly list hit its cap. *)
val ooo_evictions : t -> int

val active_flows : t -> int
