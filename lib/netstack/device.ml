(* Conformance of the unikernel netstack to the Device_sig signatures.
   These are the modules Core.Apps plugs into the application functors
   for the Posix_direct and Xen_direct targets; the ascriptions in the
   mli are the compile-time proof that the netstack implements the
   device contracts. *)

module Tcp = struct
  include Tcp

  type ipaddr = Ipaddr.t
end

module Udp = struct
  include Udp

  type ipaddr = Ipaddr.t
end

type t = Stack.t
type ipaddr = Ipaddr.t

let tcp = Stack.tcp
let udp = Stack.udp
let address = Stack.address
