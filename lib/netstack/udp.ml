(* src u16, dst u16, len u16, csum u16. *)

type callback = src:Ipaddr.t -> src_port:int -> dst_port:int -> payload:Bytestruct.t -> unit

(* Per-bound-port state behind a listener: the introspection surface TCP
   flows get from their flow records. UDP has no connection state, so the
   interesting questions are "what is bound, since when, how busy, how
   recently" — enough to spot a dead consumer or a port being flooded. *)
type sock = {
  s_cb : callback;
  s_bound_ns : int;
  mutable s_rx : int;  (* datagrams delivered to this port's listener *)
  mutable s_tx : int;  (* datagrams sent with this as source port *)
  mutable s_last_ns : int;  (* virtual time of last activity either way *)
}

type t = {
  sim : Engine.Sim.t;
  ip : Ipv4.t;
  listeners : (int, sock) Hashtbl.t;
  mutable sent : int;
  mutable received : int;
  mutable checksum_failures : int;
  mutable no_listener : int;
}

let header_bytes = 8

let handle t ~src ~dst ~payload =
  if Bytestruct.length payload < header_bytes then t.checksum_failures <- t.checksum_failures + 1
  else begin
    let src_port = Bytestruct.BE.get_uint16 payload 0 in
    let dst_port = Bytestruct.BE.get_uint16 payload 2 in
    let len = Bytestruct.BE.get_uint16 payload 4 in
    let csum = Bytestruct.BE.get_uint16 payload 6 in
    if len < header_bytes || len > Bytestruct.length payload then
      t.checksum_failures <- t.checksum_failures + 1
    else begin
      let ok =
        csum = 0
        || Checksum.valid
             [
               Checksum.pseudo_header ~src ~dst ~proto:Ipv4.proto_udp ~len;
               Bytestruct.sub payload 0 len;
             ]
      in
      if not ok then t.checksum_failures <- t.checksum_failures + 1
      else begin
        t.received <- t.received + 1;
        let body = Bytestruct.sub payload header_bytes (len - header_bytes) in
        match Hashtbl.find_opt t.listeners dst_port with
        | Some s ->
          s.s_rx <- s.s_rx + 1;
          s.s_last_ns <- Engine.Sim.now t.sim;
          s.s_cb ~src ~src_port ~dst_port ~payload:body
        | None -> t.no_listener <- t.no_listener + 1
      end
    end
  end

let create sim ?dom ip =
  let t =
    {
      sim;
      ip;
      listeners = Hashtbl.create 8;
      sent = 0;
      received = 0;
      checksum_failures = 0;
      no_listener = 0;
    }
  in
  Ipv4.set_handler ip ~proto:Ipv4.proto_udp (fun ~src ~dst ~payload -> handle t ~src ~dst ~payload);
  (if Trace.Metrics.enabled () then
     match dom with
     | None -> ()
     | Some d ->
       let dom = d.Xensim.Domain.id in
       let reg name read = Trace.Metrics.register_read ~dom ~kind:Trace.Metrics.Counter name read in
       reg "udp_datagrams_sent" (fun () -> t.sent);
       reg "udp_datagrams_received" (fun () -> t.received);
       reg "udp_checksum_failures" (fun () -> t.checksum_failures);
       reg "udp_no_listener" (fun () -> t.no_listener);
       Trace.Metrics.register_read ~dom ~kind:Trace.Metrics.Gauge "udp_bound_ports" (fun () ->
           Hashtbl.length t.listeners));
  t

let listen t ~port f =
  Hashtbl.replace t.listeners port
    { s_cb = f; s_bound_ns = Engine.Sim.now t.sim; s_rx = 0; s_tx = 0; s_last_ns = Engine.Sim.now t.sim }

let unlisten t ~port = Hashtbl.remove t.listeners port

let sendto t ~src_port ~dst ~dst_port payload =
  let len = header_bytes + Bytestruct.length payload in
  let h = Bytestruct.create header_bytes in
  Bytestruct.BE.set_uint16 h 0 src_port;
  Bytestruct.BE.set_uint16 h 2 dst_port;
  Bytestruct.BE.set_uint16 h 4 len;
  Bytestruct.BE.set_uint16 h 6 0;
  let pseudo =
    Checksum.pseudo_header ~src:(Ipv4.address t.ip) ~dst ~proto:Ipv4.proto_udp ~len
  in
  let csum = Checksum.ones_complement_list [ pseudo; h; payload ] in
  Bytestruct.BE.set_uint16 h 6 (if csum = 0 then 0xffff else csum);
  t.sent <- t.sent + 1;
  (match Hashtbl.find_opt t.listeners src_port with
  | Some s ->
    s.s_tx <- s.s_tx + 1;
    s.s_last_ns <- Engine.Sim.now t.sim
  | None -> ());
  Ipv4.output t.ip ~dst ~proto:Ipv4.proto_udp [ h; payload ]

let datagrams_sent t = t.sent
let datagrams_received t = t.received
let checksum_failures t = t.checksum_failures
let no_listener t = t.no_listener

(* ---------- socket-table introspection (parity with Tcp.sockets) ---------- *)

type sock_info = {
  si_local_port : int;
  si_rx_datagrams : int;
  si_tx_datagrams : int;
  si_age_ns : int;
  si_idle_ns : int;
}

let sockets t =
  let now = Engine.Sim.now t.sim in
  Hashtbl.fold
    (fun port s acc ->
      {
        si_local_port = port;
        si_rx_datagrams = s.s_rx;
        si_tx_datagrams = s.s_tx;
        si_age_ns = now - s.s_bound_ns;
        si_idle_ns = now - s.s_last_ns;
      }
      :: acc)
    t.listeners []
  |> List.sort (fun a b -> compare a.si_local_port b.si_local_port)
