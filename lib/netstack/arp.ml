(* Wire format (28 bytes): htype u16, ptype u16, hlen u8, plen u8, op u16,
   sha 6, spa 4, tha 6, tpa 4. *)

exception Resolution_failed of Ipaddr.t

let op_request = 1
let op_reply = 2

type t = {
  sim : Engine.Sim.t;
  eth : Ethernet.t;
  mutable ip : Ipaddr.t;
  cache : (Ipaddr.t, Macaddr.t) Hashtbl.t;
  waiting : (Ipaddr.t, Macaddr.t Mthread.Promise.u list ref) Hashtbl.t;
  mutable requests_sent : int;
  mutable replies_sent : int;
}

let build_packet ~op ~sha ~spa ~tha ~tpa =
  let b = Bytestruct.create 28 in
  Bytestruct.BE.set_uint16 b 0 1 (* Ethernet *);
  Bytestruct.BE.set_uint16 b 2 Ethernet.ethertype_ipv4;
  Bytestruct.set_uint8 b 4 6;
  Bytestruct.set_uint8 b 5 4;
  Bytestruct.BE.set_uint16 b 6 op;
  Macaddr.set b 8 sha;
  Ipaddr.set b 14 spa;
  Macaddr.set b 18 tha;
  Ipaddr.set b 24 tpa;
  b

let output t ~dst packet = Ethernet.output t.eth ~dst ~ethertype:Ethernet.ethertype_arp [ packet ]

let learn t ip mac =
  Hashtbl.replace t.cache ip mac;
  match Hashtbl.find_opt t.waiting ip with
  | None -> ()
  | Some waiters ->
    Hashtbl.remove t.waiting ip;
    List.iter
      (fun u -> if Mthread.Promise.wakener_pending u then Mthread.Promise.wakeup u mac)
      !waiters

let handle t ~payload =
  if Bytestruct.length payload >= 28 then begin
    let op = Bytestruct.BE.get_uint16 payload 6 in
    let sha = Macaddr.get payload 8 in
    let spa = Ipaddr.get payload 14 in
    let tpa = Ipaddr.get payload 24 in
    if not (Ipaddr.equal spa Ipaddr.any) then learn t spa sha;
    if op = op_request && Ipaddr.equal tpa t.ip then begin
      t.replies_sent <- t.replies_sent + 1;
      let reply =
        build_packet ~op:op_reply ~sha:(Ethernet.mac t.eth) ~spa:t.ip ~tha:sha ~tpa:spa
      in
      Mthread.Promise.async (fun () -> output t ~dst:sha reply)
    end
  end

let create sim eth ~ip =
  let t =
    {
      sim;
      eth;
      ip;
      cache = Hashtbl.create 32;
      waiting = Hashtbl.create 8;
      requests_sent = 0;
      replies_sent = 0;
    }
  in
  Ethernet.set_handler eth ~ethertype:Ethernet.ethertype_arp (fun ~src:_ ~dst:_ ~payload ->
      handle t ~payload);
  t

let announce t =
  let packet =
    build_packet ~op:op_request ~sha:(Ethernet.mac t.eth) ~spa:t.ip ~tha:Macaddr.broadcast
      ~tpa:t.ip
  in
  output t ~dst:Macaddr.broadcast packet

let set_ip t ip =
  t.ip <- ip;
  Mthread.Promise.async (fun () -> announce t)

let send_request t ip =
  t.requests_sent <- t.requests_sent + 1;
  let packet =
    build_packet ~op:op_request ~sha:(Ethernet.mac t.eth) ~spa:t.ip ~tha:Macaddr.broadcast ~tpa:ip
  in
  output t ~dst:Macaddr.broadcast packet

let retry_interval_ns = Engine.Sim.sec 1
let max_tries = 3

let resolve t ip =
  let open Mthread.Promise in
  match Hashtbl.find_opt t.cache ip with
  | Some mac -> return mac
  | None ->
    let p, u = wait () in
    let waiters =
      match Hashtbl.find_opt t.waiting ip with
      | Some w -> w
      | None ->
        let w = ref [] in
        Hashtbl.replace t.waiting ip w;
        w
    in
    waiters := u :: !waiters;
    let rec attempt n =
      if Hashtbl.mem t.cache ip then return ()
      else if n > max_tries then begin
        (match Hashtbl.find_opt t.waiting ip with
        | Some ws ->
          Hashtbl.remove t.waiting ip;
          List.iter
            (fun u ->
              if wakener_pending u then wakeup_exn u (Resolution_failed ip))
            !ws
        | None -> ());
        return ()
      end
      else
        bind (send_request t ip) (fun () ->
            (* Race the reply against the retry timer, descheduling the
               timer on success so idle simulations drain promptly. *)
            let timer = sleep t.sim retry_interval_ns in
            bind
              (choose [ map (fun _ -> `Resolved) p; map (fun () -> `Retry) timer ])
              (function
                | `Resolved ->
                  cancel timer;
                  return ()
                | `Retry -> attempt (n + 1)))
    in
    (* Only the first waiter drives retransmission. *)
    if List.length !waiters = 1 then async (fun () -> attempt 1);
    p

(* Seed the cache without traffic: boot storms pre-program well-known
   peers (the way /etc/ethers or a controller would) so 10⁴ concurrent
   boots don't each broadcast a resolution to 10⁴ ports. *)
let add_static t ~ip ~mac = learn t ip mac

let cached t ip = Hashtbl.find_opt t.cache ip
let cache_size t = Hashtbl.length t.cache
let requests_sent t = t.requests_sent
let replies_sent t = t.replies_sent
