(* An L4 load-balancer appliance core: accept on a front port, pick a
   backend, splice bytes both ways. The paper's fleet story (§5) scales a
   service by booting more single-purpose appliances behind one address;
   this is the one address.

   Like every protocol engine in the tree it is a functor over the
   transport signature — the same balancer runs over the unikernel
   netstack or host sockets, instantiated in [Core.Apps].

   Backends are health-checked against their /metrics endpoint (every
   appliance with [Boot_spec.metrics_port] set already serves it, so the
   check exercises the same stack the scrape plane uses): a backend that
   misses [unhealthy_after] consecutive checks stops receiving new
   connections, and recovers after [healthy_after] consecutive passes.
   Draining a backend (orchestrator scale-in) excludes it from picking
   immediately while connections in flight finish. *)

let ( >>= ) = Mthread.Promise.bind
let return = Mthread.Promise.return

type policy =
  | Hash  (** connection affinity: hash of the client endpoint *)
  | Least_conns  (** fewest in-flight proxied connections, ties by age *)

let policy_name = function Hash -> "hash" | Least_conns -> "least-conns"

module Make (T : Device_sig.TCP) = struct
  module C = Uhttp.Client.Make (T)

  type backend = {
    b_name : string;
    b_addr : T.ipaddr;
    b_port : int;
    b_health_port : int;
    mutable b_conns : int;  (* proxied connections in flight *)
    mutable b_total : int;  (* connections ever assigned *)
    mutable b_healthy : bool;
    mutable b_draining : bool;
    mutable b_ok_streak : int;
    mutable b_fail_streak : int;
    mutable b_checks_ok : int;
    mutable b_checks_failed : int;
  }

  (* A flow accepted while the backend set was empty, parked until a
     backend appears (scale-to-zero cold start) or the hold times out. *)
  type pending = {
    p_client : T.flow;
    p_at : int;  (* enqueue time, for held-wait accounting *)
    mutable p_settled : bool;  (* dispatched or timed out *)
    mutable p_timer : unit Mthread.Promise.t option;
  }

  type t = {
    sim : Engine.Sim.t;
    dom : int;
    tcp : T.t;
    port : int;
    policy : policy;
    check_interval_ns : int;
    check_timeout_ns : int;
    healthy_after : int;
    unhealthy_after : int;
    (* scale-to-zero hooks: when set, a flow arriving with no eligible
       backend is parked on [pending] and [on_demand] is poked (the
       orchestrator's cold-start path) instead of refusing outright. *)
    on_demand : (unit -> unit) option;
    pending_timeout_ns : int;
    pending : pending Queue.t;
    mutable pending_count : int;  (* unsettled entries in [pending] *)
    mutable held_total : int;
    mutable held_wait_max_ns : int;
    mutable backends : backend list;  (* newest first; [backends] reverses *)
    mutable conns_total : int;
    mutable refused : int;  (* accepted with no backend to give *)
    mutable active : int;
    mutable draining : bool;
    mutable drained_wakers : unit Mthread.Promise.u list;
  }

  let backends t = List.rev t.backends
  let active_connections t = t.active
  let connections_total t = t.conns_total
  let refused t = t.refused
  let pending_count t = t.pending_count
  let held_total t = t.held_total
  let held_wait_max_ns t = t.held_wait_max_ns

  let eligible t =
    List.filter (fun b -> b.b_healthy && not b.b_draining) (backends t)

  let healthy_count t = List.length (eligible t)

  let find_backend t name = List.find_opt (fun b -> b.b_name = name) t.backends

  let emit t what b =
    if Trace.enabled () then
      Trace.emit ~dom:t.dom
        ~payload:[ ("backend", Trace.String b.b_name) ]
        ~cat:(Trace.User "lb") what

  (* ---- backend set ---- *)

  let drain_backend t ~name =
    match find_backend t name with
    | None -> ()
    | Some b ->
      if not b.b_draining then begin
        b.b_draining <- true;
        emit t "lb.backend_drain" b
      end

  let remove_backend t ~name =
    (match find_backend t name with None -> () | Some b -> emit t "lb.backend_remove" b);
    t.backends <- List.filter (fun b -> b.b_name <> name) t.backends

  (* ---- picking ---- *)

  let pick t ~client =
    match eligible t with
    | [] -> None
    | pool -> (
      match t.policy with
      | Hash -> Some (List.nth pool (Hashtbl.hash client mod List.length pool))
      | Least_conns ->
        (* fewest in-flight; [pool] is oldest-first so ties go to the
           longest-lived backend (stable under churn) *)
        Some
          (List.fold_left
             (fun best b -> if b.b_conns < best.b_conns then b else best)
             (List.hd pool) (List.tl pool)))

  (* ---- the splice ---- *)

  (* One direction: copy until EOF, then half-close the other side; a
     reset on either side aborts both. *)
  let pump src dst =
    let rec loop () =
      T.read src >>= function
      | None -> T.close dst
      | Some b -> T.write dst b >>= fun () -> loop ()
    in
    Mthread.Promise.catch loop (fun _ ->
        T.abort dst;
        return ())

  let note_idle t =
    if t.active = 0 && t.draining then begin
      let ws = t.drained_wakers in
      t.drained_wakers <- [];
      List.iter (fun w -> Mthread.Promise.wakeup w ()) ws
    end

  let rec handle_flow t client =
    match pick t ~client:(T.remote client) with
    | None -> (
      match t.on_demand with
      | Some notify when not t.draining ->
        (* Scale-to-zero: park the flow, poke the orchestrator's
           cold-start path, and give the boot [pending_timeout_ns] to
           produce a backend before the client is refused. *)
        let e =
          { p_client = client; p_at = Engine.Sim.now t.sim; p_settled = false; p_timer = None }
        in
        Queue.add e t.pending;
        t.pending_count <- t.pending_count + 1;
        t.held_total <- t.held_total + 1;
        let timer = Mthread.Promise.sleep t.sim t.pending_timeout_ns in
        e.p_timer <- Some timer;
        Mthread.Promise.async (fun () ->
            Mthread.Promise.catch
              (fun () ->
                timer >>= fun () ->
                if not e.p_settled then begin
                  e.p_settled <- true;
                  t.pending_count <- t.pending_count - 1;
                  t.refused <- t.refused + 1;
                  T.abort e.p_client
                end;
                return ())
              (fun _ -> (* timer cancelled at dispatch *) return ()));
        notify ();
        return ()
      | _ ->
        (* nothing to give: refuse fast rather than queue blind *)
        t.refused <- t.refused + 1;
        T.abort client;
        return ())
    | Some b ->
      t.conns_total <- t.conns_total + 1;
      t.active <- t.active + 1;
      b.b_conns <- b.b_conns + 1;
      b.b_total <- b.b_total + 1;
      Mthread.Promise.finalize
        (fun () ->
          Mthread.Promise.catch
            (fun () ->
              T.connect t.tcp ~dst:b.b_addr ~dst_port:b.b_port >>= fun server ->
              Mthread.Promise.join [ pump client server; pump server client ])
            (fun _ ->
              (* backend refused or died mid-splice: drop the client *)
              T.abort client;
              return ()))
        (fun () ->
          b.b_conns <- b.b_conns - 1;
          t.active <- t.active - 1;
          note_idle t;
          return ())

  (* A backend appeared (cold boot finished, or a sick one recovered):
     re-dispatch every parked flow in arrival order. *)
  and flush_pending t =
    if t.pending_count > 0 && eligible t <> [] then begin
      let ready = ref [] in
      while not (Queue.is_empty t.pending) do
        let e = Queue.pop t.pending in
        if not e.p_settled then begin
          e.p_settled <- true;
          t.pending_count <- t.pending_count - 1;
          (match e.p_timer with Some tm -> Mthread.Promise.cancel tm | None -> ());
          let waited = Engine.Sim.now t.sim - e.p_at in
          if waited > t.held_wait_max_ns then t.held_wait_max_ns <- waited;
          ready := e :: !ready
        end
      done;
      List.iter
        (fun e -> Mthread.Promise.async (fun () -> handle_flow t e.p_client))
        (List.rev !ready)
    end

  let add_backend t ~name ~addr ~port ~health_port =
    if not (List.exists (fun b -> b.b_name = name) t.backends) then begin
      let b =
        {
          b_name = name;
          b_addr = addr;
          b_port = port;
          b_health_port = health_port;
          b_conns = 0;
          b_total = 0;
          (* optimistic: the orchestrator registers a shard after its
             stack is up, so don't make it wait out a first check round *)
          b_healthy = true;
          b_draining = false;
          b_ok_streak = 0;
          b_fail_streak = 0;
          b_checks_ok = 0;
          b_checks_failed = 0;
        }
      in
      t.backends <- b :: t.backends;
      emit t "lb.backend_add" b;
      flush_pending t
    end

  (* ---- health checks ---- *)

  let check t b =
    Mthread.Promise.catch
      (fun () ->
        Mthread.Promise.with_timeout t.sim t.check_timeout_ns (fun () ->
            C.get_once t.tcp ~dst:b.b_addr ~port:b.b_health_port "/metrics")
        >>= fun resp -> return (resp.Uhttp.Http_wire.status = 200))
      (fun _ -> return false)
    >>= fun ok ->
    if ok then begin
      b.b_checks_ok <- b.b_checks_ok + 1;
      b.b_fail_streak <- 0;
      b.b_ok_streak <- b.b_ok_streak + 1;
      if (not b.b_healthy) && b.b_ok_streak >= t.healthy_after then begin
        b.b_healthy <- true;
        emit t "lb.backend_up" b;
        flush_pending t
      end
    end
    else begin
      b.b_checks_failed <- b.b_checks_failed + 1;
      b.b_ok_streak <- 0;
      b.b_fail_streak <- b.b_fail_streak + 1;
      if b.b_healthy && b.b_fail_streak >= t.unhealthy_after then begin
        b.b_healthy <- false;
        emit t "lb.backend_down" b
      end
    end;
    return ()

  (* One round: check every backend sequentially (deterministic order). *)
  let health_round t =
    let rec go = function
      | [] -> return ()
      | b :: rest -> check t b >>= fun () -> go rest
    in
    go (backends t)

  let rec run_health t =
    if t.draining then return ()
    else
      health_round t >>= fun () ->
      Mthread.Promise.sleep t.sim t.check_interval_ns >>= fun () -> run_health t

  (* ---- lifecycle ---- *)

  let create sim ?(dom = -1) ?(policy = Least_conns) ?(check_interval_ns = 100_000_000)
      ?check_timeout_ns ?(healthy_after = 2) ?(unhealthy_after = 2) ?on_demand
      ?(pending_timeout_ns = 1_000_000_000) ~tcp ~port () =
    let check_timeout_ns =
      match check_timeout_ns with Some n -> n | None -> check_interval_ns / 2
    in
    let t =
      {
        sim;
        dom;
        tcp;
        port;
        policy;
        check_interval_ns;
        check_timeout_ns;
        healthy_after;
        unhealthy_after;
        on_demand;
        pending_timeout_ns;
        pending = Queue.create ();
        pending_count = 0;
        held_total = 0;
        held_wait_max_ns = 0;
        backends = [];
        conns_total = 0;
        refused = 0;
        active = 0;
        draining = false;
        drained_wakers = [];
      }
    in
    T.listen tcp ~port (fun flow -> handle_flow t flow);
    Mthread.Promise.async (fun () -> run_health t);
    if Trace.Metrics.enabled () then begin
      let reg kind name read = Trace.Metrics.register_read ~dom ~kind name read in
      reg Trace.Metrics.Counter "lb_conns_total" (fun () -> t.conns_total);
      reg Trace.Metrics.Counter "lb_refused" (fun () -> t.refused);
      reg Trace.Metrics.Counter "lb_held_total" (fun () -> t.held_total);
      reg Trace.Metrics.Gauge "lb_held_pending" (fun () -> t.pending_count);
      reg Trace.Metrics.Gauge "lb_active_conns" (fun () -> t.active);
      reg Trace.Metrics.Gauge "lb_backends" (fun () -> List.length t.backends);
      reg Trace.Metrics.Gauge "lb_backends_healthy" (fun () -> healthy_count t)
    end;
    t

  (* Graceful drain ([Appliance.Handle.drain]'s hook): close the front
     listener, let splices in flight finish, resolve once idle. *)
  let drain t =
    if not t.draining then begin
      t.draining <- true;
      T.unlisten t.tcp ~port:t.port;
      (* Parked flows will never get a backend now: refuse them so no
         client hangs out its timeout against a draining balancer. *)
      while not (Queue.is_empty t.pending) do
        let e = Queue.pop t.pending in
        if not e.p_settled then begin
          e.p_settled <- true;
          t.pending_count <- t.pending_count - 1;
          (match e.p_timer with Some tm -> Mthread.Promise.cancel tm | None -> ());
          t.refused <- t.refused + 1;
          T.abort e.p_client
        end
      done
    end;
    if t.active = 0 then return ()
    else begin
      let p, w = Mthread.Promise.wait () in
      t.drained_wakers <- w :: t.drained_wakers;
      p
    end

  let draining t = t.draining
end
