(* Open-loop client population driver.

   A closed-loop generator (wait for the response, then send again)
   self-throttles exactly when the system degrades — it cannot expose an
   overload. This driver is open-loop: arrivals follow a rate schedule
   regardless of completions, like a population of independent users
   behind think times. With think time Z and arrival rate r the modelled
   population is N = r * Z (Little's law): a 1000 rps peak with 100 s
   think time is 10^5 users; with 1000 s, 10^6. [population] reports it.

   The schedule is piecewise-linear over (offset_ns, rate_rps) points —
   a ramp is just two points. Arrivals are Poisson (exponential gaps
   from the engine's deterministic PRNG), so identical seeds replay the
   exact arrival sequence. Each arrival opens a connection through the
   front address, issues one GET, and records the end-to-end latency in
   both a cumulative histogram (reporting) and a [Latwin] window
   (control). *)

let ( >>= ) = Mthread.Promise.bind
let return = Mthread.Promise.return

module Make (T : Device_sig.TCP) = struct
  module C = Uhttp.Client.Make (T)

  type t = {
    sim : Engine.Sim.t;
    tcp : T.t;
    dst : T.ipaddr;
    port : int;
    path : string;
    think_ns : int;
    timeout_ns : int;
    prng : Engine.Prng.t;
    on_sample : (latency_ns:int -> unit) option;
    latencies : Trace.Hist.t;
    window : Latwin.t;
    mutable peak_rate : float;
    mutable issued : int;
    mutable ok : int;
    mutable errors : int;  (* refused / reset / non-200 *)
    mutable timeouts : int;
    mutable in_flight : int;
    mutable peak_in_flight : int;
  }

  let create sim ~tcp ~dst ?(port = 80) ?(path = "/") ?(think_ns = 100_000_000_000)
      ?(timeout_ns = 2_000_000_000) ?(window_ns = 1_000_000_000) ?on_sample ~prng () =
    {
      sim;
      tcp;
      dst;
      port;
      path;
      think_ns;
      timeout_ns;
      prng;
      on_sample;
      latencies = Trace.Hist.create ();
      window = Latwin.create sim ~window_ns ();
      peak_rate = 0.0;
      issued = 0;
      ok = 0;
      errors = 0;
      timeouts = 0;
      in_flight = 0;
      peak_in_flight = 0;
    }

  let latencies t = t.latencies
  let window t = t.window
  let issued t = t.issued
  let ok t = t.ok
  let errors t = t.errors
  let timeouts t = t.timeouts
  let in_flight t = t.in_flight
  let peak_in_flight t = t.peak_in_flight

  (* Modelled user population at rate r (Little's law, N = r * Z). *)
  let population t ~rate = int_of_float (rate *. float_of_int t.think_ns /. 1e9)
  let peak_population t = population t ~rate:t.peak_rate

  (* Piecewise-linear rate over (offset_ns, rate_rps) points, sorted by
     offset; flat before the first and after the last. *)
  let rate_at schedule ~offset_ns =
    match schedule with
    | [] -> 0.0
    | (t0, r0) :: _ when offset_ns <= t0 -> r0
    | first :: rest ->
      let rec go (tp, rp) = function
        | [] -> rp
        | (tn, rn) :: rest ->
          if offset_ns <= tn then
            if tn = tp then rn
            else rp +. ((rn -. rp) *. float_of_int (offset_ns - tp) /. float_of_int (tn - tp))
          else go (tn, rn) rest
      in
      go first rest

  let one_request t =
    t.issued <- t.issued + 1;
    t.in_flight <- t.in_flight + 1;
    if t.in_flight > t.peak_in_flight then t.peak_in_flight <- t.in_flight;
    let started = Engine.Sim.now t.sim in
    Mthread.Promise.finalize
      (fun () ->
        Mthread.Promise.catch
          (fun () ->
            Mthread.Promise.with_timeout t.sim t.timeout_ns (fun () ->
                C.get_once t.tcp ~dst:t.dst ~port:t.port t.path)
            >>= fun resp ->
            let lat = Engine.Sim.now t.sim - started in
            if resp.Uhttp.Http_wire.status = 200 then begin
              t.ok <- t.ok + 1;
              Trace.Hist.record t.latencies lat;
              Latwin.observe t.window lat;
              match t.on_sample with None -> () | Some f -> f ~latency_ns:lat
            end
            else t.errors <- t.errors + 1;
            return ())
          (fun exn ->
            (match exn with
            | Mthread.Promise.Timeout -> t.timeouts <- t.timeouts + 1
            | _ -> t.errors <- t.errors + 1);
            return ()))
      (fun () ->
        t.in_flight <- t.in_flight - 1;
        return ())

  (* Drive the schedule for [duration_ns]: exponential inter-arrival gaps
     at the instantaneous rate, each arrival served by an independent
     fibre (open loop: a slow fleet never slows the arrival clock). While
     the rate is zero, re-poll the schedule every 10 ms. *)
  let run t ~schedule ~duration_ns =
    let started = Engine.Sim.now t.sim in
    let rec loop () =
      let offset_ns = Engine.Sim.now t.sim - started in
      if offset_ns >= duration_ns then return ()
      else begin
        let r = rate_at schedule ~offset_ns in
        if r > t.peak_rate then t.peak_rate <- r;
        if r <= 0.0 then Mthread.Promise.sleep t.sim 10_000_000 >>= loop
        else begin
          Mthread.Promise.async (fun () -> one_request t);
          let gap = Engine.Prng.exponential t.prng ~mean:(1e9 /. r) in
          Mthread.Promise.sleep t.sim (max 1 (int_of_float gap)) >>= loop
        end
      end
    in
    loop ()
end
