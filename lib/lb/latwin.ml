(* Windowed latency percentiles.

   The metrics plane's [http_request_ns] summary is lifetime-cumulative:
   one overload episode raises its p99 forever, which would wedge any
   controller watching it at "permanently breached". Closed-loop control
   needs a signal that recovers when the system does, so this keeps a
   bounded ring of (time, latency) samples and computes percentiles over
   only those younger than the window. Exposed to the scrape plane as a
   plain gauge via [register_gauge]. *)

type t = {
  sim : Engine.Sim.t;
  window_ns : int;
  cap : int;
  times : int array;
  values : int array;
  mutable len : int;  (* samples held, <= cap *)
  mutable next : int;  (* write position *)
}

let create sim ?(window_ns = 1_000_000_000) ?(capacity = 4096) () =
  if window_ns <= 0 then invalid_arg "Latwin.create: window_ns must be positive";
  if capacity <= 0 then invalid_arg "Latwin.create: capacity must be positive";
  {
    sim;
    window_ns;
    cap = capacity;
    times = Array.make capacity 0;
    values = Array.make capacity 0;
    len = 0;
    next = 0;
  }

let observe t latency_ns =
  t.times.(t.next) <- Engine.Sim.now t.sim;
  t.values.(t.next) <- max 0 latency_ns;
  t.next <- (t.next + 1) mod t.cap;
  if t.len < t.cap then t.len <- t.len + 1

(* Samples still inside the window, oldest first. *)
let in_window t =
  let horizon = Engine.Sim.now t.sim - t.window_ns in
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    let pos = (t.next - t.len + i + (t.cap * 2)) mod t.cap in
    if t.times.(pos) >= horizon then out := t.values.(pos) :: !out
  done;
  !out

let samples t = List.length (in_window t)

(* Nearest-rank percentile over the live window; [None] when empty. *)
let quantile t q =
  match in_window t with
  | [] -> None
  | vs ->
    let a = Array.of_list vs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
    Some a.(max 0 (min (n - 1) rank))

let p99 t = quantile t 0.99

(* Publish the window's q-quantile as a pull gauge (0 while empty): the
   monitor scrapes it like any other series, and SLO rules on it recover
   as soon as the fleet does. *)
let register_gauge t ?(dom = -1) ?(q = 0.99) name =
  if Trace.Metrics.enabled () then
    Trace.Metrics.register_read ~dom ~kind:Trace.Metrics.Gauge name (fun () ->
        match quantile t q with Some v -> v | None -> 0)
