(** Authoritative DNS server engines over any {!Device_sig.UDP} transport.

    One real answering path (decode, database lookup, encode / memo) is
    shared by all engines; what differs is (a) whether memoisation is on
    and (b) the per-query virtual-CPU cost model, which encodes each
    baseline's documented algorithmic structure (see the calibration
    comments in the implementation). This is how Figure 10's six curves
    are produced from one correct implementation plus explicit models of
    BIND's and NSD's processing costs.

    The server is a functor over the transport; instantiation happens at
    configure time ([Core.Apps], per [Unikernel.target]). *)

type engine =
  | Mirage of { memoize : bool }  (** the real Mirage appliance path *)
  | Bind_like  (** general-purpose database, per-query feature checks *)
  | Nsd_like  (** precompiled answer set, minimal per-query work *)

(** The per-query vCPU cost the engine charges, exposed for the analytical
    crosscheck in the benchmark harness. *)
val query_cost_ns : engine -> zone_entries:int -> platform:Platform.t -> memo_hit:bool -> int

module Make (U : Device_sig.UDP) : sig
  type t

  val create :
    Engine.Sim.t ->
    ?dom:Xensim.Domain.t ->
    udp:U.t ->
    ?port:int ->
    db:Db.t ->
    engine:engine ->
    unit ->
    t

  (** Graceful drain: close the listener; an answer already in flight
      still goes out (the response path holds the socket, not the
      listener). Resolves immediately; idempotent. *)
  val drain : t -> unit Mthread.Promise.t

  val draining : t -> bool
  val queries_served : t -> int
  val decode_failures : t -> int
  val memo : t -> Memo.t option

  (** {1 Client} (tests, examples, load generators) *)

  module Client : sig
    (** [query sim udp ~server ~qname ~qtype] sends one query and resolves
        with the response ([None] on 2 s timeout). *)
    val query :
      Engine.Sim.t ->
      U.t ->
      server:U.ipaddr ->
      ?port:int ->
      qname:Dns_name.t ->
      qtype:Dns_wire.qtype ->
      unit ->
      Dns_wire.message option Mthread.Promise.t
  end
end
