type engine = Mirage of { memoize : bool } | Bind_like | Nsd_like

(* Per-query engine cost models (ns of vCPU per query, excluding the
   driver/stack per-packet costs already charged by the device layer).

   Calibration against Figure 10, accounting for the rx+tx path costs of
   each platform (~5.7 us/query on linux-pv, ~4.6 us on xen-direct,
   ~47-55 us on MiniOS with its select(2) penalty):

   - bind_like: a general-purpose database with per-query feature checks;
     ~8 us plus a small O(log n) term. The paper found BIND
     *consistently slower on small zones* without identifying the cause
     (their footnote 6); we reproduce that observed shape with an
     empirical 1/n term calibrated to their curve, not a mechanism claim.
   - nsd_like: precompiled answer database, ~8.6 us, nearly flat in n.
   - mirage no-memo: type-safe parse + functional-map lookup + fresh
     encode: ~18 us + 0.35 us * log2 n.
   - mirage memo hit: hashtable probe + id patch + send of the cached
     buffer: ~8.2 us; a miss pays the no-memo path plus insertion. *)

let log2 n = if n <= 1 then 0.0 else log (float_of_int n) /. log 2.0

let query_cost_ns engine ~zone_entries ~platform ~memo_hit =
  let app = platform.Platform.app_factor in
  let base =
    match engine with
    | Bind_like ->
      8_000.0 +. (380.0 *. log2 zone_entries) +. (400_000.0 /. float_of_int (max 1 zone_entries))
    | Nsd_like -> 8_600.0 +. (60.0 *. log2 zone_entries)
    | Mirage { memoize } ->
      if memoize && memo_hit then 8_200.0
      else begin
        let lookup = 18_000.0 +. (350.0 *. log2 zone_entries) in
        if memoize then lookup +. 1_000.0 else lookup
      end
  in
  int_of_float (base *. app)

(* One client id sequence shared by every backend instantiation, so query
   id streams (and thus wire traces) are globally deterministic. *)
let next_client_id = ref 1

(* The answering path is a functor over the datagram transport: the same
   decode/lookup/encode/memo code serves over the unikernel netstack or
   Hostnet's host-kernel sockets. *)
module Make (U : Device_sig.UDP) = struct
  type t = {
    sim : Engine.Sim.t;
    dom : Xensim.Domain.t option;
    udp : U.t;
    port : int;
    db : Db.t;
    engine : engine;
    memo : Memo.t option;
    mutable served : int;
    mutable decode_failures : int;
    mutable draining : bool;
  }

  let charge t ~memo_hit =
    match t.dom with
    | None -> ()
    | Some d ->
      let cost =
        query_cost_ns t.engine ~zone_entries:(Db.entries t.db) ~platform:d.Xensim.Domain.platform
          ~memo_hit
      in
      if Trace.enabled () then begin
        (* Retro-span from enqueue to the end of the vCPU slice: the
           application layer of a DNS flow's waterfall (the response is
           sent concurrently; the query cost gates only subsequent work). *)
        let queued = Engine.Sim.now t.sim in
        Xensim.Domain.charge_k d ~cost (fun () ->
            if Trace.enabled () then
              Trace.record_span_ns ~dom:d.Xensim.Domain.id
                ~payload:[ ("memo_hit", Trace.Bool memo_hit) ]
                ~cat:(Trace.User "dns") "dns.query"
                (Engine.Sim.now t.sim - queued))
      end
      else Xensim.Domain.charge_k d ~cost (fun () -> ())

  let respond t ~src ~src_port ~dst_port encoded =
    Mthread.Promise.async (fun () ->
        U.sendto t.udp ~src_port:dst_port ~dst:src ~dst_port:src_port encoded)

  let handle t ~src ~src_port ~dst_port ~payload =
    match Dns_wire.decode payload with
    | exception Dns_wire.Decode_error _ -> t.decode_failures <- t.decode_failures + 1
    | msg when msg.Dns_wire.flags.Dns_wire.qr -> () (* ignore stray responses *)
    | { Dns_wire.questions = [ q ]; id; _ } ->
      t.served <- t.served + 1;
      let qname = q.Dns_wire.qname and qtype = q.Dns_wire.qtype in
      if Trace.enabled () then
        Trace.emit
          ?dom:(Option.map (fun d -> d.Xensim.Domain.id) t.dom)
          ~cat:(Trace.User "dns")
          ~payload:[ ("qname", Trace.String (Dns_name.to_string qname)) ]
          "dns.handle";
      let memo_hit, encoded =
        match t.memo with
        | Some cache -> (
          match Memo.find cache ~qname ~qtype with
          | Some cached ->
            Dns_wire.patch_id cached id;
            (true, cached)
          | None ->
            let fresh = Dns_wire.encode (Db.answer t.db ~id q) in
            Memo.add cache ~qname ~qtype fresh;
            (false, fresh))
        | None -> (false, Dns_wire.encode (Db.answer t.db ~id q))
      in
      charge t ~memo_hit;
      respond t ~src ~src_port ~dst_port encoded
    | msg ->
      (* zero or multiple questions: FORMERR *)
      t.served <- t.served + 1;
      let err =
        {
          Dns_wire.id = msg.Dns_wire.id;
          flags = Dns_wire.response_flags ~aa:false ~rcode:Dns_wire.Format_error;
          questions = [];
          answers = [];
          authorities = [];
          additionals = [];
        }
      in
      charge t ~memo_hit:false;
      respond t ~src ~src_port ~dst_port (Dns_wire.encode err)

  let create sim ?dom ~udp ?(port = 53) ~db ~engine () =
    let memo = match engine with Mirage { memoize = true } -> Some (Memo.create ()) | _ -> None in
    let t =
      { sim; dom; udp; port; db; engine; memo; served = 0; decode_failures = 0; draining = false }
    in
    U.listen udp ~port (fun ~src ~src_port ~dst_port ~payload ->
        handle t ~src ~src_port ~dst_port ~payload);
    t

  (* Datagram drain is immediate: unlisten, and any answer already being
     charged to the vCPU still goes out ([respond] holds the socket, not
     the listener). Idempotent. *)
  let drain t =
    if not t.draining then begin
      t.draining <- true;
      U.unlisten t.udp ~port:t.port
    end;
    Mthread.Promise.return ()

  let draining t = t.draining
  let queries_served t = t.served
  let decode_failures t = t.decode_failures
  let memo t = t.memo

  module Client = struct
    let query sim udp ~server ?(port = 53) ~qname ~qtype () =
      let open Mthread.Promise in
      let id = !next_client_id land 0xffff in
      incr next_client_id;
      let src_port = 10000 + (!next_client_id land 0x3fff) in
      let msg = Dns_wire.query ~id qname qtype in
      let p, u = wait () in
      U.listen udp ~port:src_port (fun ~src:_ ~src_port:_ ~dst_port:_ ~payload ->
          match Dns_wire.decode payload with
          | exception Dns_wire.Decode_error _ -> ()
          | reply when reply.Dns_wire.id = id && reply.Dns_wire.flags.Dns_wire.qr ->
            if wakener_pending u then wakeup u reply
          | _ -> ());
      let cleanup () =
        U.unlisten udp ~port:src_port;
        return ()
      in
      finalize
        (fun () ->
          bind (U.sendto udp ~src_port ~dst:server ~dst_port:port (Dns_wire.encode msg))
            (fun () ->
              catch
                (fun () ->
                  bind (with_timeout sim (Engine.Sim.sec 2) (fun () -> p)) (fun r -> return (Some r)))
                (function Timeout -> return None | e -> fail e)))
        cleanup
  end
end
