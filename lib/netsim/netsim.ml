let broadcast_mac = "\xff\xff\xff\xff\xff\xff"

(* Which side of the wire a tapped frame was seen on: [Tx] as it leaves
   the sending NIC (before the fault layer — dropped frames are still
   observed leaving, exactly like a capture on the sending host), [Rx] as
   it is delivered to a receiving NIC (post-fault: corrupted bytes,
   duplicates and reordering are visible; flooded frames produce one Rx
   observation per receiving port). *)
type dir = Tx | Rx

type tap_handle = int

let mac_to_string m =
  String.concat ":" (List.init (String.length m) (fun i -> Printf.sprintf "%02x" (Char.code m.[i])))

let mac_of_int i =
  (* 0x02 prefix: locally administered, unicast. *)
  let b = Bytes.create 6 in
  Bytes.set b 0 '\x02';
  Bytes.set b 1 (Char.chr ((i lsr 24) land 0xff));
  Bytes.set b 2 (Char.chr ((i lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((i lsr 8) land 0xff));
  Bytes.set b 4 (Char.chr (i land 0xff));
  Bytes.set b 5 '\x01';
  Bytes.to_string b

(* Fault-injection counters: one per injected-fault kind, so a trace of a
   chaotic run explains every retransmit the TCP layer records. *)
let c_burst_drop = Trace.counter "netsim.fault.burst_drop"
let c_flap_drop = Trace.counter "netsim.fault.flap_drop"
let c_script_drop = Trace.counter "netsim.fault.script_drop"
let c_corrupt = Trace.counter "netsim.fault.corrupt"
let c_duplicate = Trace.counter "netsim.fault.duplicate"
let c_reorder = Trace.counter "netsim.fault.reorder"

module Faults = struct
  type gilbert_elliott = {
    p_good_bad : float;
    p_bad_good : float;
    loss_good : float;
    loss_bad : float;
    slot_ns : int;
  }

  let burst_loss ?(slot_ns = 100_000) ~avg_loss ~burst_len () =
    if avg_loss < 0.0 || avg_loss >= 1.0 then invalid_arg "Faults.burst_loss: avg_loss in [0,1)";
    let p_bad_good = 1.0 /. float_of_int (max 1 burst_len) in
    let p_good_bad = avg_loss *. p_bad_good /. (1.0 -. avg_loss) in
    { p_good_bad; p_bad_good; loss_good = 0.0; loss_bad = 1.0; slot_ns }

  type t = {
    ge : gilbert_elliott option;
    reorder_p : float;
    reorder_extra_ns : int;
    dup_p : float;
    corrupt_p : float;
    jitter_ns : int;
    flap : (int * int * int) option;
    drop_when : (now_ns:int -> nth:int -> Bytestruct.t -> bool) option;
  }

  let none =
    {
      ge = None;
      reorder_p = 0.0;
      reorder_extra_ns = 0;
      dup_p = 0.0;
      corrupt_p = 0.0;
      jitter_ns = 0;
      flap = None;
      drop_when = None;
    }

  let make ?ge ?reorder ?duplicate ?corrupt ?jitter_ns ?flap ?drop_when () =
    let reorder_p, reorder_extra_ns =
      match reorder with None -> (0.0, 0) | Some (p, d) -> (p, max 1 d)
    in
    (match flap with
    | Some (_, down, period) when down <= 0 || period <= down ->
      invalid_arg "Faults.make: flap needs 0 < down_ns < period_ns"
    | _ -> ());
    {
      ge;
      reorder_p;
      reorder_extra_ns;
      dup_p = Option.value duplicate ~default:0.0;
      corrupt_p = Option.value corrupt ~default:0.0;
      jitter_ns = Option.value jitter_ns ~default:0;
      flap;
      drop_when;
    }
end

type nic = {
  id : int;  (* bridge-local link id, stable for the port's lifetime *)
  mac : string;
  bandwidth_bps : int;
  latency_ns : int;
  mutable loss : float;
  bridge : bridge;
  mutable rx : (Bytestruct.t -> unit) option;
  mutable tx_free_at : int;
  mutable frames_sent : int;
  mutable frames_received : int;
  mutable bytes_sent : int;
  (* fault-injection state (see {!Faults}); [fault_prng] is split from the
     bridge PRNG at [set_faults] time so each schedule replays bit-for-bit
     from the simulation seed, independently of other links. *)
  mutable faults : Faults.t;
  mutable fault_prng : Engine.Prng.t;
  mutable ge_bad : bool;
  mutable ge_last_ns : int;
  mutable fault_nth : int;
  (* false once the port is detached (its domain destroyed): frames from
     it vanish at the wire and the bridge never delivers to it again. *)
  mutable attached : bool;
}

and bridge = {
  sim : Engine.Sim.t;
  prng : Engine.Prng.t;
  mutable nics : nic list;
  mutable nic_count : int;  (* physical length of [nics], O(1) *)
  (* Detached ports stay in [nics] (deliver skips them) and are swept out
     lazily once they outnumber live ones — O(1) amortised detach instead
     of an O(ports) filter per domain teardown. *)
  mutable detached_count : int;
  (* Pre-program MAC → port at [new_nic] time (like static fdb entries on
     a Xen vif): a 10⁴-port boot storm never floods to learn addresses,
     which would otherwise cost O(ports) deliveries per unknown frame. *)
  static_fdb : bool;
  table : (string, nic) Hashtbl.t;  (* learned MAC -> port *)
  mutable forwarded : int;
  mutable flooded : int;
  mutable dropped : int;
  mutable burst_dropped : int;
  mutable flap_dropped : int;
  mutable script_dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable taps : (int * (dir:dir -> link:int -> time_ns:int -> Bytestruct.t -> unit)) list;
  mutable tap_seq : int;
  mutable nic_seq : int;
  (* Service directory keyed by name for O(1) advertise/withdraw; the seq
     stamp reconstructs the historical enumeration order (oldest
     advertisement first, re-advertising moves a name to the end). *)
  services : (string, int * string * int) Hashtbl.t;  (* name -> seq, ip, port *)
  mutable ad_seq : int;
}

type fault_counts = {
  fc_burst_dropped : int;
  fc_flap_dropped : int;
  fc_script_dropped : int;
  fc_corrupted : int;
  fc_duplicated : int;
  fc_reordered : int;
}

module Nic = struct
  type t = nic

  let mac t = t.mac
  let id t = t.id
  let frames_sent t = t.frames_sent
  let frames_received t = t.frames_received
  let bytes_sent t = t.bytes_sent
  let set_rx t f = t.rx <- Some f

  let deliver t frame ~time =
    if t.attached then begin
      t.frames_received <- t.frames_received + 1;
      (match t.bridge.taps with
      | [] -> ()
      | taps -> List.iter (fun (_, f) -> f ~dir:Rx ~link:t.id ~time_ns:time frame) taps);
      match t.rx with None -> () | Some f -> f frame
    end

  (* Bridge-side arrival: learn the source port, forward or flood. *)
  let forward b src_nic frame ~time =
    let src = Bytestruct.get_string frame 6 6 in
    Hashtbl.replace b.table src src_nic;
    let dst = Bytestruct.get_string frame 0 6 in
    let flood () =
      b.flooded <- b.flooded + 1;
      List.iter (fun n -> if n != src_nic then deliver n frame ~time) b.nics
    in
    if dst = broadcast_mac then flood ()
    else
      match Hashtbl.find_opt b.table dst with
      | Some port when not port.attached ->
        (* Stale entry for a detached port, cleaned lazily here rather
           than by an O(table) sweep at detach time: behaves exactly as
           if detach had flushed it (unknown destination → flood). *)
        Hashtbl.remove b.table dst;
        flood ()
      | Some port when port != src_nic ->
        b.forwarded <- b.forwarded + 1;
        deliver port frame ~time
      | Some _ -> ()
      | None -> flood ()

  (* Single-bit corruption, restricted to the IP packet body past the
     ethernet + IPv4 headers: this models the bit errors that evade the
     ethernet FCS and that the transport checksum must catch. Flipping
     header bytes of unprotected protocols (ARP) would wedge the world in
     ways no real NIC allows through. *)
  let maybe_corrupt t frame =
    let len = Bytestruct.length frame in
    if len > 34 && Bytestruct.BE.get_uint16 frame 12 = 0x0800 then begin
      let byte = 34 + Engine.Prng.int t.fault_prng (len - 34) in
      let bit = Engine.Prng.int t.fault_prng 8 in
      Bytestruct.set_uint8 frame byte (Bytestruct.get_uint8 frame byte lxor (1 lsl bit));
      t.bridge.corrupted <- t.bridge.corrupted + 1;
      Trace.incr c_corrupt
    end

  let link_down faults ~time =
    match faults.Faults.flap with
    | Some (first, down_ns, period_ns) ->
      time >= first && (time - first) mod period_ns < down_ns
    | None -> false

  let send ?owner t frame =
    let len = Bytestruct.length frame in
    if len < 14 then invalid_arg "Netsim: frame shorter than an Ethernet header";
    if not t.attached then ()
    else
    let b = t.bridge in
    t.frames_sent <- t.frames_sent + 1;
    t.bytes_sent <- t.bytes_sent + len;
    (* Zero-copy wire: the frame view rides to the receiver as-is.
       Either the owner's refcount keeps the backing pktbuf out of its
       pool until delivery, or (raw senders) the buffer is fresh per
       send. Corruption is the one fault that writes, and it copies
       first — see below. *)
    let wire_frame = frame in
    let now = Engine.Sim.now b.sim in
    let serialisation = int_of_float (float_of_int (len * 8) /. float_of_int t.bandwidth_bps *. 1e9) in
    let start = max now t.tx_free_at in
    t.tx_free_at <- start + serialisation;
    let arrival = start + serialisation + t.latency_ns in
    (* Tx tap: the frame as it leaves this NIC, stamped with the moment
       serialisation begins — before the fault layer, so a capture on a
       lossy link still shows what the sender put on the wire. With an
       owner, observers see the backing pktbuf as the ambient current and
       can retain it instead of copying. One null check on the no-tap
       path. *)
    (match b.taps with
    | [] -> ()
    | taps ->
      let fire () = List.iter (fun (_, f) -> f ~dir:Tx ~link:t.id ~time_ns:start wire_frame) taps in
      (match owner with Some pb -> Pktbuf.with_current pb fire | None -> fire ()));
    let f = t.faults in
    let nth = t.fault_nth in
    t.fault_nth <- nth + 1;
    if Engine.Prng.float b.prng 1.0 < t.loss then b.dropped <- b.dropped + 1
    else if (match f.Faults.drop_when with Some p -> p ~now_ns:now ~nth wire_frame | None -> false)
    then begin
      b.dropped <- b.dropped + 1;
      b.script_dropped <- b.script_dropped + 1;
      Trace.incr c_script_drop
    end
    else if link_down f ~time:start then begin
      b.dropped <- b.dropped + 1;
      b.flap_dropped <- b.flap_dropped + 1;
      Trace.incr c_flap_drop
    end
    else begin
      (* Gilbert–Elliott channel. The chain advances one step per [slot_ns]
         of link time (at least one per frame): a channel in the Bad state
         recovers during idle gaps, so a sender retransmitting on a
         backed-off RTO is not doomed to meet the same burst forever. The
         k-step state is sampled in closed form with one PRNG draw:
         P(bad after k) = pi_b + (b0 - pi_b)·lambda^k, lambda = 1-p_gb-p_bg. *)
      let ge_drop =
        match f.Faults.ge with
        | None -> false
        | Some g ->
          let p_gb = g.Faults.p_good_bad and p_bg = g.Faults.p_bad_good in
          let steps = max 1 ((start - t.ge_last_ns) / max 1 g.Faults.slot_ns) in
          t.ge_last_ns <- start;
          let p_bad =
            if p_gb +. p_bg <= 0.0 then if t.ge_bad then 1.0 else 0.0
            else begin
              let pi_b = p_gb /. (p_gb +. p_bg) in
              let lam = 1.0 -. p_gb -. p_bg in
              let lamk = if lam = 0.0 then 0.0 else lam ** float_of_int steps in
              let b0 = if t.ge_bad then 1.0 else 0.0 in
              pi_b +. ((b0 -. pi_b) *. lamk)
            end
          in
          t.ge_bad <- Engine.Prng.float t.fault_prng 1.0 < p_bad;
          let p = if t.ge_bad then g.Faults.loss_bad else g.Faults.loss_good in
          p > 0.0 && Engine.Prng.float t.fault_prng 1.0 < p
      in
      if ge_drop then begin
        b.dropped <- b.dropped + 1;
        b.burst_dropped <- b.burst_dropped + 1;
        Trace.incr c_burst_drop
      end
      else begin
        let wire_frame, owner =
          if f.Faults.corrupt_p > 0.0 && Engine.Prng.float t.fault_prng 1.0 < f.Faults.corrupt_p
          then begin
            (* Copy-on-mutate: corruption gets a private copy so the
               sender's buffer (possibly pooled, possibly shared with a
               duplicate delivery already in flight) stays pristine. *)
            let c = Bytestruct.copy wire_frame in
            maybe_corrupt t c;
            (c, None)
          end
          else (wire_frame, owner)
        in
        let arrival =
          if f.Faults.jitter_ns > 0 then arrival + Engine.Prng.int t.fault_prng f.Faults.jitter_ns
          else arrival
        in
        let arrival =
          if f.Faults.reorder_p > 0.0 && Engine.Prng.float t.fault_prng 1.0 < f.Faults.reorder_p
          then begin
            b.reordered <- b.reordered + 1;
            Trace.incr c_reorder;
            arrival + 1 + Engine.Prng.int t.fault_prng f.Faults.reorder_extra_ns
          end
          else arrival
        in
        let dispatch time =
          match owner with
          | None -> ignore (Engine.Sim.at b.sim ~time (fun () -> forward b t wire_frame ~time))
          | Some pb ->
            (* One reference per scheduled delivery: the pool cannot
               recycle the buffer while it is on the wire, and receivers
               can retain it past the delivery via the ambient. *)
            Pktbuf.retain pb;
            ignore
              (Engine.Sim.at b.sim ~time (fun () ->
                   Pktbuf.with_current pb (fun () -> forward b t wire_frame ~time);
                   Pktbuf.release pb))
        in
        dispatch arrival;
        if f.Faults.dup_p > 0.0 && Engine.Prng.float t.fault_prng 1.0 < f.Faults.dup_p then begin
          b.duplicated <- b.duplicated + 1;
          Trace.incr c_duplicate;
          let dup_at = arrival + 1 + Engine.Prng.int t.fault_prng 50_000 in
          dispatch dup_at
        end
      end
    end
end

module Bridge = struct
  type t = bridge

  let create ?(static_fdb = false) sim =
    {
      sim;
      prng = Engine.Prng.split (Engine.Sim.prng sim);
      nics = [];
      nic_count = 0;
      detached_count = 0;
      static_fdb;
      table = Hashtbl.create 32;
      forwarded = 0;
      flooded = 0;
      dropped = 0;
      burst_dropped = 0;
      flap_dropped = 0;
      script_dropped = 0;
      corrupted = 0;
      duplicated = 0;
      reordered = 0;
      taps = [];
      tap_seq = 0;
      nic_seq = 0;
      services = Hashtbl.create 32;
      ad_seq = 0;
    }

  let new_nic t ?(bandwidth_bps = 1_000_000_000) ?(latency_ns = 30_000) ?(loss = 0.0) ~mac () =
    if String.length mac <> 6 then invalid_arg "Netsim.Bridge.new_nic: MAC must be 6 bytes";
    let id = t.nic_seq in
    t.nic_seq <- id + 1;
    let nic =
      {
        id;
        mac;
        bandwidth_bps;
        latency_ns;
        loss;
        bridge = t;
        rx = None;
        tx_free_at = 0;
        frames_sent = 0;
        frames_received = 0;
        bytes_sent = 0;
        faults = Faults.none;
        fault_prng = Engine.Prng.create ~seed:0 ();
        ge_bad = false;
        ge_last_ns = 0;
        fault_nth = 0;
        attached = true;
      }
    in
    t.nics <- nic :: t.nics;
    t.nic_count <- t.nic_count + 1;
    if t.static_fdb then Hashtbl.replace t.table mac nic;
    nic

  (* Unplug a port: the NIC stops sending and receiving, its learned
     table entries are flushed, and it leaves the flood set. Models the
     toolstack tearing down a destroyed domain's vif.

     O(1) amortised: the port's own MAC entry goes now; entries learned
     for other source MACs on this port (rare) are evicted lazily at
     lookup in [Nic.forward], and the flood list is only compacted once
     detached ports outnumber live ones (relative order of survivors is
     preserved, so flood delivery order — and with it every downstream
     event — is unchanged). *)
  let detach t nic =
    if nic.attached then begin
      nic.attached <- false;
      nic.rx <- None;
      (match Hashtbl.find_opt t.table nic.mac with
      | Some port when port == nic -> Hashtbl.remove t.table nic.mac
      | _ -> ());
      t.detached_count <- t.detached_count + 1;
      if t.detached_count * 2 > t.nic_count then begin
        t.nics <- List.filter (fun n -> n.attached) t.nics;
        t.nic_count <- t.nic_count - t.detached_count;
        t.detached_count <- 0
      end
    end

  let set_loss _t nic p = nic.loss <- p

  let set_faults t nic f =
    nic.faults <- f;
    nic.fault_prng <- Engine.Prng.split t.prng;
    nic.ge_bad <- false;
    nic.ge_last_ns <- Engine.Sim.now t.sim;
    nic.fault_nth <- 0

  let forwarded t = t.forwarded
  let flooded t = t.flooded
  let dropped t = t.dropped

  let fault_counts t =
    {
      fc_burst_dropped = t.burst_dropped;
      fc_flap_dropped = t.flap_dropped;
      fc_script_dropped = t.script_dropped;
      fc_corrupted = t.corrupted;
      fc_duplicated = t.duplicated;
      fc_reordered = t.reordered;
    }

  let tap t f =
    let h = t.tap_seq in
    t.tap_seq <- h + 1;
    t.taps <- (h, f) :: t.taps;
    h

  let untap t h = t.taps <- List.filter (fun (h', _) -> h' <> h) t.taps

  (* An mDNS-like service directory kept on the switch: appliances that
     expose an endpoint advertise (name, ip, port) at boot and the monitor
     discovers its scrape targets here instead of being configured with
     addresses. Re-advertising a name replaces the entry — and restamps
     it, so it moves to the end of the enumeration just as it did when
     this was an assoc list. O(1) either way, where the assoc-list
     rebuild was O(services) per boot/teardown. *)
  let advertise t ~name ~ip ~port =
    Hashtbl.replace t.services name (t.ad_seq, ip, port);
    t.ad_seq <- t.ad_seq + 1

  (* Deregistration on domain shutdown: a destroyed exporter must not
     linger in the directory, or the monitor keeps scraping a corpse
     (stale-series → rate-0 masks the death). *)
  let withdraw t ~name = Hashtbl.remove t.services name

  (* Advertisement order (oldest first): deterministic for a deterministic
     boot sequence. Enumeration pays an O(n log n) sort so that the hot
     advertise/withdraw path doesn't. *)
  let services t =
    Hashtbl.fold (fun name (seq, ip, port) acc -> (seq, (name, ip, port)) :: acc) t.services []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
end

(* The fifth observability plane: wire-level capture. A [Capture.t] is a
   bounded ring of recent frames matching a small pcap-style filter, fed
   either from a bridge tap (every frame crossing the switch, both
   directions) or from per-vif capture points in the device layer. Frames
   are held by reference per the pktbuf discipline — [record] retains the
   backing pool buffer and the ring's eviction releases it; only frames
   with no pool backing (raw test senders, the fault layer's corrupted
   copies) are copied, and then only up to the snaplen. Dumps are real
   libpcap files (readable by tcpdump/Wireshark) plus a JSONL sidecar
   carrying what classic pcap cannot: direction, link id and the
   [Trace.Flow] id ambient when the frame was recorded, which is the same
   id `mirage_sim trace waterfall` prints. *)
module Capture = struct
  (* --- frame decoding: ethernet / IPv4 / TCP / UDP, offsets per RFC --- *)

  let ethertype fr = if Bytestruct.length fr >= 14 then Bytestruct.BE.get_uint16 fr 12 else -1
  let is_ipv4 fr = ethertype fr = 0x0800 && Bytestruct.length fr >= 34
  let ip_proto fr = Bytestruct.get_uint8 fr 23
  let l4_off fr = 14 + ((Bytestruct.get_uint8 fr 14 land 0xf) * 4)

  let has_ports fr =
    is_ipv4 fr
    && (let p = ip_proto fr in p = 6 || p = 17)
    && Bytestruct.length fr >= l4_off fr + 4

  let src_port fr = Bytestruct.BE.get_uint16 fr (l4_off fr)
  let dst_port fr = Bytestruct.BE.get_uint16 fr (l4_off fr + 2)

  let tcp_flags fr =
    if is_ipv4 fr && ip_proto fr = 6 && Bytestruct.length fr >= l4_off fr + 14 then
      Bytestruct.get_uint8 fr (l4_off fr + 13)
    else 0

  let ip_str fr off =
    Printf.sprintf "%d.%d.%d.%d" (Bytestruct.get_uint8 fr off)
      (Bytestruct.get_uint8 fr (off + 1))
      (Bytestruct.get_uint8 fr (off + 2))
      (Bytestruct.get_uint8 fr (off + 3))

  let flags_str f =
    let b = Buffer.create 4 in
    if f land 0x02 <> 0 then Buffer.add_char b 'S';
    if f land 0x10 <> 0 then Buffer.add_char b 'A';
    if f land 0x01 <> 0 then Buffer.add_char b 'F';
    if f land 0x04 <> 0 then Buffer.add_char b 'R';
    if f land 0x08 <> 0 then Buffer.add_char b 'P';
    if f land 0x20 <> 0 then Buffer.add_char b 'U';
    if Buffer.length b = 0 then "." else Buffer.contents b

  (* tcpdump-style one-liner for sidecars, the CLI and flight bundles. *)
  let summarize fr =
    let ty = ethertype fr in
    if ty = 0x0806 then "arp"
    else if not (is_ipv4 fr) then Printf.sprintf "eth type 0x%04x" (ty land 0xffff)
    else
      let s = ip_str fr 26 and d = ip_str fr 30 in
      match ip_proto fr with
      | 6 when has_ports fr ->
        Printf.sprintf "tcp %s:%d > %s:%d flags=%s" s (src_port fr) d (dst_port fr)
          (flags_str (tcp_flags fr))
      | 17 when has_ports fr -> Printf.sprintf "udp %s:%d > %s:%d" s (src_port fr) d (dst_port fr)
      | 1 -> Printf.sprintf "icmp %s > %s" s d
      | p -> Printf.sprintf "ip proto %d %s > %s" p s d

  (* --- capture filters: `tcp and port 80 and flag syn` --- *)

  type side = Either | Src | Dst

  type filter =
    | All
    | Not of filter
    | And of filter * filter
    | Or of filter * filter
    | Proto of int  (* IP protocol number: 6 tcp, 17 udp, 1 icmp *)
    | Ether_ip
    | Ether_arp
    | Host of side * string  (* 4-byte IPv4 address *)
    | Port of side * int
    | Flag of int  (* TCP flag mask *)

  let filter_all = All

  let rec filter_matches f fr =
    match f with
    | All -> true
    | Not g -> not (filter_matches g fr)
    | And (a, b) -> filter_matches a fr && filter_matches b fr
    | Or (a, b) -> filter_matches a fr || filter_matches b fr
    | Ether_ip -> ethertype fr = 0x0800
    | Ether_arp -> ethertype fr = 0x0806
    | Proto p -> is_ipv4 fr && ip_proto fr = p
    | Host (side, a) ->
      is_ipv4 fr
      &&
      let src = Bytestruct.get_string fr 26 4 and dst = Bytestruct.get_string fr 30 4 in
      (match side with Either -> src = a || dst = a | Src -> src = a | Dst -> dst = a)
    | Port (side, p) ->
      has_ports fr
      && (match side with
         | Either -> src_port fr = p || dst_port fr = p
         | Src -> src_port fr = p
         | Dst -> dst_port fr = p)
    | Flag m -> tcp_flags fr land m <> 0

  exception Bad_filter of string

  let parse_ipv4 s =
    match String.split_on_char '.' s with
    | [ a; b; c; d ] -> (
      try
        let oct x =
          match int_of_string_opt x with
          | Some v when v >= 0 && v <= 255 -> Char.chr v
          | _ -> raise Exit
        in
        let by = Bytes.create 4 in
        Bytes.set by 0 (oct a);
        Bytes.set by 1 (oct b);
        Bytes.set by 2 (oct c);
        Bytes.set by 3 (oct d);
        Some (Bytes.to_string by)
      with Exit -> None)
    | _ -> None

  let tokenize s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (function
        | ('(' | ')') as c ->
          Buffer.add_char b ' ';
          Buffer.add_char b c;
          Buffer.add_char b ' '
        | c -> Buffer.add_char b (Char.lowercase_ascii c))
      s;
    String.split_on_char ' ' (Buffer.contents b) |> List.filter (fun t -> t <> "")

  (* Recursive descent over  expr := term (or term)* ;
     term := fact (and fact)* ;  fact := not fact | ( expr ) | prim. *)
  let parse_filter s =
    match tokenize s with
    | [] -> Ok All
    | toks ->
      let rest = ref toks in
      let peek () = match !rest with [] -> None | t :: _ -> Some t in
      let next () =
        match !rest with
        | [] -> raise (Bad_filter "unexpected end of filter")
        | t :: tl ->
          rest := tl;
          t
      in
      let flag_mask = function
        | "fin" -> 0x01
        | "syn" -> 0x02
        | "rst" -> 0x04
        | "psh" -> 0x08
        | "ack" -> 0x10
        | "urg" -> 0x20
        | t -> raise (Bad_filter (Printf.sprintf "unknown tcp flag %S" t))
      in
      let prim ~side =
        match next () with
        | "host" -> (
          let a = next () in
          match parse_ipv4 a with
          | Some ip -> Host (side, ip)
          | None -> raise (Bad_filter (Printf.sprintf "bad IPv4 address %S" a)))
        | "port" -> (
          let p = next () in
          match int_of_string_opt p with
          | Some v when v >= 0 && v <= 65535 -> Port (side, v)
          | _ -> raise (Bad_filter (Printf.sprintf "bad port %S" p)))
        | t -> raise (Bad_filter (Printf.sprintf "expected host or port, got %S" t))
      in
      let rec expr () =
        let l = term () in
        match peek () with
        | Some "or" ->
          ignore (next ());
          Or (l, expr ())
        | _ -> l
      and term () =
        let l = fact () in
        match peek () with
        | Some "and" ->
          ignore (next ());
          And (l, term ())
        | _ -> l
      and fact () =
        match next () with
        | "not" -> Not (fact ())
        | "(" -> (
          let e = expr () in
          match !rest with
          | ")" :: tl ->
            rest := tl;
            e
          | _ -> raise (Bad_filter "missing closing parenthesis"))
        | "tcp" -> Proto 6
        | "udp" -> Proto 17
        | "icmp" -> Proto 1
        | "ip" -> Ether_ip
        | "arp" -> Ether_arp
        | "src" -> prim ~side:Src
        | "dst" -> prim ~side:Dst
        | "host" ->
          rest := "host" :: !rest;
          prim ~side:Either
        | "port" ->
          rest := "port" :: !rest;
          prim ~side:Either
        | "flag" | "flags" -> Flag (flag_mask (next ()))
        | t -> raise (Bad_filter (Printf.sprintf "unknown token %S" t))
      in
      (try
         let f = expr () in
         match !rest with
         | [] -> Ok f
         | tl -> Error ("trailing tokens: " ^ String.concat " " tl)
       with Bad_filter m -> Error m)

  (* --- the ring --- *)

  type entry = {
    en_t : int;
    en_dir : dir;
    en_link : int;
    en_flow : int;  (* Trace.Flow id ambient at record time, -1 = none *)
    en_len : int;  (* original on-wire length *)
    en_frame : Bytestruct.t;
    en_owner : Pktbuf.t option;  (* reference released when the ring evicts *)
  }

  type t = {
    c_name : string;
    c_filter : filter;
    c_snaplen : int;
    c_ring : entry option array;
    mutable c_head : int;  (* total frames written; slot = head mod capacity *)
    mutable c_matched : int;
    mutable c_evicted : int;
    mutable c_taps : (bridge * tap_handle) list;
  }

  (* All live captures, oldest first — the flight-recorder hook walks
     this to freeze recent frames into postmortem bundles. *)
  let live : t list ref = ref []

  let create ?(name = "cap0") ?(capacity = 256) ?(snaplen = 65535) ?(filter = All) () =
    if capacity <= 0 then invalid_arg "Netsim.Capture.create: capacity must be positive";
    if snaplen < 14 then invalid_arg "Netsim.Capture.create: snaplen below an Ethernet header";
    let c =
      {
        c_name = name;
        c_filter = filter;
        c_snaplen = snaplen;
        c_ring = Array.make capacity None;
        c_head = 0;
        c_matched = 0;
        c_evicted = 0;
        c_taps = [];
      }
    in
    live := !live @ [ c ];
    c

  let name c = c.c_name
  let matched c = c.c_matched
  let evicted c = c.c_evicted
  let stored c = min c.c_head (Array.length c.c_ring)

  let release_entry = function
    | Some { en_owner = Some pb; _ } -> Pktbuf.release pb
    | _ -> ()

  (* Record one frame. Zero-copy: prefer an explicit [?owner], else the
     ambient current pktbuf (the Tx tap and the RX delivery chain both
     set it when the frame is pool-backed) — either way a reference is
     taken and held until this ring slot is overwritten. Frames with no
     pool backing are copied, truncated to the snaplen. *)
  let record ?owner c ~dir ~link ~time_ns frame =
    if filter_matches c.c_filter frame then begin
      c.c_matched <- c.c_matched + 1;
      let len = Bytestruct.length frame in
      let owner, frame =
        match owner with
        | Some pb ->
          Pktbuf.retain pb;
          (Some pb, frame)
        | None -> (
          match Pktbuf.retain_current () with
          | Some pb -> (Some pb, frame)
          | None -> (None, Bytestruct.copy (Bytestruct.sub frame 0 (min len c.c_snaplen))))
      in
      let e =
        {
          en_t = time_ns;
          en_dir = dir;
          en_link = link;
          en_flow = Trace.Flow.current ();
          en_len = len;
          en_frame = frame;
          en_owner = owner;
        }
      in
      let slot = c.c_head mod Array.length c.c_ring in
      (match c.c_ring.(slot) with
      | Some _ as old ->
        c.c_evicted <- c.c_evicted + 1;
        release_entry old
      | None -> ());
      c.c_ring.(slot) <- Some e;
      c.c_head <- c.c_head + 1
    end

  let attach_bridge c b =
    let h = Bridge.tap b (fun ~dir ~link ~time_ns fr -> record c ~dir ~link ~time_ns fr) in
    c.c_taps <- (b, h) :: c.c_taps

  let entries c =
    let cap = Array.length c.c_ring in
    let n = stored c in
    List.init n (fun i ->
        match c.c_ring.((c.c_head - n + i) mod cap) with
        | Some e -> e
        | None -> assert false)

  let dir_name = function Tx -> "tx" | Rx -> "rx"

  type record_info = {
    r_t : int;
    r_dir : dir;
    r_link : int;
    r_flow : int;
    r_len : int;
    r_summary : string;
  }

  let records c =
    List.map
      (fun e ->
        {
          r_t = e.en_t;
          r_dir = e.en_dir;
          r_link = e.en_link;
          r_flow = e.en_flow;
          r_len = e.en_len;
          r_summary = summarize e.en_frame;
        })
      (entries c)

  let to_pcap c =
    let b = Buffer.create 4096 in
    Formats.Pcap.add_header ~snaplen:c.c_snaplen b;
    List.iter
      (fun e ->
        let keep = min (Bytestruct.length e.en_frame) c.c_snaplen in
        Formats.Pcap.add_packet b ~ts_ns:e.en_t ~orig_len:e.en_len
          (Bytestruct.get_string e.en_frame 0 keep))
      (entries c);
    Buffer.contents b

  (* Sidecar for a pcap dump: classic pcap has no per-packet comments, so
     the flow ids (and direction/link) ride in JSONL next to the capture,
     one line per packet in file order. *)
  let flows_json c =
    let b = Buffer.create 1024 in
    List.iteri
      (fun i e ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"idx\":%d,\"t_ns\":%d,\"dir\":\"%s\",\"link\":%d,\"flow\":%d,\"len\":%d,\"summary\":\"%s\"}\n"
             i e.en_t (dir_name e.en_dir) e.en_link e.en_flow e.en_len (summarize e.en_frame)))
      (entries c);
    Buffer.contents b

  let clear c =
    Array.iteri
      (fun i e ->
        release_entry e;
        c.c_ring.(i) <- None)
      c.c_ring;
    c.c_head <- 0

  let close c =
    List.iter (fun (b, h) -> Bridge.untap b h) c.c_taps;
    c.c_taps <- [];
    clear c;
    live := List.filter (fun c' -> c' != c) !live

  (* --- flight-recorder integration ---

     On a postmortem trip, freeze the last few captured frames of the
     implicated flow into the bundle. The trip payloads emitted by the
     TCP layer carry the flow's ports as ("port", Int _) / ("rport",
     Int _); frames are filtered by those when present, otherwise the
     most recent frames are taken as-is. *)

  let flight_k = 16

  let rec drop n = function l when n <= 0 -> l | [] -> [] | _ :: tl -> drop (n - 1) tl

  let flight_lines ~dom:_ ~reason:_ ~payload =
    match !live with
    | [] -> ""
    | captures ->
      let ports =
        List.filter_map
          (function ("port" | "rport" | "lport"), Trace.Int p -> Some p | _ -> None)
          payload
      in
      let relevant e =
        match ports with
        | [] -> true
        | ps ->
          has_ports e.en_frame
          && (List.mem (src_port e.en_frame) ps || List.mem (dst_port e.en_frame) ps)
      in
      let b = Buffer.create 256 in
      List.iter
        (fun c ->
          let es = List.filter relevant (entries c) in
          let es = drop (List.length es - flight_k) es in
          List.iter
            (fun e ->
              Buffer.add_string b
                (Printf.sprintf
                   "{\"capture\":\"%s\",\"t\":%d,\"dir\":\"%s\",\"link\":%d,\"flow\":%d,\"len\":%d,\"frame\":\"%s\"}\n"
                   c.c_name e.en_t (dir_name e.en_dir) e.en_link e.en_flow e.en_len
                   (summarize e.en_frame)))
            es)
        captures;
      Buffer.contents b

  let () = Trace.Flight.set_capture_hook (Some flight_lines)
end
