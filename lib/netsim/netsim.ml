let broadcast_mac = "\xff\xff\xff\xff\xff\xff"

let mac_to_string m =
  String.concat ":" (List.init (String.length m) (fun i -> Printf.sprintf "%02x" (Char.code m.[i])))

let mac_of_int i =
  (* 0x02 prefix: locally administered, unicast. *)
  let b = Bytes.create 6 in
  Bytes.set b 0 '\x02';
  Bytes.set b 1 (Char.chr ((i lsr 24) land 0xff));
  Bytes.set b 2 (Char.chr ((i lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((i lsr 8) land 0xff));
  Bytes.set b 4 (Char.chr (i land 0xff));
  Bytes.set b 5 '\x01';
  Bytes.to_string b

(* Fault-injection counters: one per injected-fault kind, so a trace of a
   chaotic run explains every retransmit the TCP layer records. *)
let c_burst_drop = Trace.counter "netsim.fault.burst_drop"
let c_flap_drop = Trace.counter "netsim.fault.flap_drop"
let c_script_drop = Trace.counter "netsim.fault.script_drop"
let c_corrupt = Trace.counter "netsim.fault.corrupt"
let c_duplicate = Trace.counter "netsim.fault.duplicate"
let c_reorder = Trace.counter "netsim.fault.reorder"

module Faults = struct
  type gilbert_elliott = {
    p_good_bad : float;
    p_bad_good : float;
    loss_good : float;
    loss_bad : float;
    slot_ns : int;
  }

  let burst_loss ?(slot_ns = 100_000) ~avg_loss ~burst_len () =
    if avg_loss < 0.0 || avg_loss >= 1.0 then invalid_arg "Faults.burst_loss: avg_loss in [0,1)";
    let p_bad_good = 1.0 /. float_of_int (max 1 burst_len) in
    let p_good_bad = avg_loss *. p_bad_good /. (1.0 -. avg_loss) in
    { p_good_bad; p_bad_good; loss_good = 0.0; loss_bad = 1.0; slot_ns }

  type t = {
    ge : gilbert_elliott option;
    reorder_p : float;
    reorder_extra_ns : int;
    dup_p : float;
    corrupt_p : float;
    jitter_ns : int;
    flap : (int * int * int) option;
    drop_when : (now_ns:int -> nth:int -> Bytestruct.t -> bool) option;
  }

  let none =
    {
      ge = None;
      reorder_p = 0.0;
      reorder_extra_ns = 0;
      dup_p = 0.0;
      corrupt_p = 0.0;
      jitter_ns = 0;
      flap = None;
      drop_when = None;
    }

  let make ?ge ?reorder ?duplicate ?corrupt ?jitter_ns ?flap ?drop_when () =
    let reorder_p, reorder_extra_ns =
      match reorder with None -> (0.0, 0) | Some (p, d) -> (p, max 1 d)
    in
    (match flap with
    | Some (_, down, period) when down <= 0 || period <= down ->
      invalid_arg "Faults.make: flap needs 0 < down_ns < period_ns"
    | _ -> ());
    {
      ge;
      reorder_p;
      reorder_extra_ns;
      dup_p = Option.value duplicate ~default:0.0;
      corrupt_p = Option.value corrupt ~default:0.0;
      jitter_ns = Option.value jitter_ns ~default:0;
      flap;
      drop_when;
    }
end

type nic = {
  mac : string;
  bandwidth_bps : int;
  latency_ns : int;
  mutable loss : float;
  bridge : bridge;
  mutable rx : (Bytestruct.t -> unit) option;
  mutable tx_free_at : int;
  mutable frames_sent : int;
  mutable frames_received : int;
  mutable bytes_sent : int;
  (* fault-injection state (see {!Faults}); [fault_prng] is split from the
     bridge PRNG at [set_faults] time so each schedule replays bit-for-bit
     from the simulation seed, independently of other links. *)
  mutable faults : Faults.t;
  mutable fault_prng : Engine.Prng.t;
  mutable ge_bad : bool;
  mutable ge_last_ns : int;
  mutable fault_nth : int;
  (* false once the port is detached (its domain destroyed): frames from
     it vanish at the wire and the bridge never delivers to it again. *)
  mutable attached : bool;
}

and bridge = {
  sim : Engine.Sim.t;
  prng : Engine.Prng.t;
  mutable nics : nic list;
  mutable nic_count : int;  (* physical length of [nics], O(1) *)
  (* Detached ports stay in [nics] (deliver skips them) and are swept out
     lazily once they outnumber live ones — O(1) amortised detach instead
     of an O(ports) filter per domain teardown. *)
  mutable detached_count : int;
  (* Pre-program MAC → port at [new_nic] time (like static fdb entries on
     a Xen vif): a 10⁴-port boot storm never floods to learn addresses,
     which would otherwise cost O(ports) deliveries per unknown frame. *)
  static_fdb : bool;
  table : (string, nic) Hashtbl.t;  (* learned MAC -> port *)
  mutable forwarded : int;
  mutable flooded : int;
  mutable dropped : int;
  mutable burst_dropped : int;
  mutable flap_dropped : int;
  mutable script_dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable taps : (time_ns:int -> Bytestruct.t -> unit) list;
  (* Service directory keyed by name for O(1) advertise/withdraw; the seq
     stamp reconstructs the historical enumeration order (oldest
     advertisement first, re-advertising moves a name to the end). *)
  services : (string, int * string * int) Hashtbl.t;  (* name -> seq, ip, port *)
  mutable ad_seq : int;
}

type fault_counts = {
  fc_burst_dropped : int;
  fc_flap_dropped : int;
  fc_script_dropped : int;
  fc_corrupted : int;
  fc_duplicated : int;
  fc_reordered : int;
}

module Nic = struct
  type t = nic

  let mac t = t.mac
  let frames_sent t = t.frames_sent
  let frames_received t = t.frames_received
  let bytes_sent t = t.bytes_sent
  let set_rx t f = t.rx <- Some f

  let deliver t frame =
    if t.attached then begin
      t.frames_received <- t.frames_received + 1;
      match t.rx with None -> () | Some f -> f frame
    end

  (* Bridge-side arrival: tap, learn the source port, forward or flood. *)
  let forward b src_nic frame ~time =
    List.iter (fun tap -> tap ~time_ns:time frame) b.taps;
    let src = Bytestruct.get_string frame 6 6 in
    Hashtbl.replace b.table src src_nic;
    let dst = Bytestruct.get_string frame 0 6 in
    let flood () =
      b.flooded <- b.flooded + 1;
      List.iter (fun n -> if n != src_nic then deliver n frame) b.nics
    in
    if dst = broadcast_mac then flood ()
    else
      match Hashtbl.find_opt b.table dst with
      | Some port when not port.attached ->
        (* Stale entry for a detached port, cleaned lazily here rather
           than by an O(table) sweep at detach time: behaves exactly as
           if detach had flushed it (unknown destination → flood). *)
        Hashtbl.remove b.table dst;
        flood ()
      | Some port when port != src_nic ->
        b.forwarded <- b.forwarded + 1;
        deliver port frame
      | Some _ -> ()
      | None -> flood ()

  (* Single-bit corruption, restricted to the IP packet body past the
     ethernet + IPv4 headers: this models the bit errors that evade the
     ethernet FCS and that the transport checksum must catch. Flipping
     header bytes of unprotected protocols (ARP) would wedge the world in
     ways no real NIC allows through. *)
  let maybe_corrupt t frame =
    let len = Bytestruct.length frame in
    if len > 34 && Bytestruct.BE.get_uint16 frame 12 = 0x0800 then begin
      let byte = 34 + Engine.Prng.int t.fault_prng (len - 34) in
      let bit = Engine.Prng.int t.fault_prng 8 in
      Bytestruct.set_uint8 frame byte (Bytestruct.get_uint8 frame byte lxor (1 lsl bit));
      t.bridge.corrupted <- t.bridge.corrupted + 1;
      Trace.incr c_corrupt
    end

  let link_down faults ~time =
    match faults.Faults.flap with
    | Some (first, down_ns, period_ns) ->
      time >= first && (time - first) mod period_ns < down_ns
    | None -> false

  let send ?owner t frame =
    let len = Bytestruct.length frame in
    if len < 14 then invalid_arg "Netsim: frame shorter than an Ethernet header";
    if not t.attached then ()
    else
    let b = t.bridge in
    t.frames_sent <- t.frames_sent + 1;
    t.bytes_sent <- t.bytes_sent + len;
    (* Zero-copy wire: the frame view rides to the receiver as-is.
       Either the owner's refcount keeps the backing pktbuf out of its
       pool until delivery, or (raw senders) the buffer is fresh per
       send. Corruption is the one fault that writes, and it copies
       first — see below. *)
    let wire_frame = frame in
    let now = Engine.Sim.now b.sim in
    let serialisation = int_of_float (float_of_int (len * 8) /. float_of_int t.bandwidth_bps *. 1e9) in
    let start = max now t.tx_free_at in
    t.tx_free_at <- start + serialisation;
    let arrival = start + serialisation + t.latency_ns in
    let f = t.faults in
    let nth = t.fault_nth in
    t.fault_nth <- nth + 1;
    if Engine.Prng.float b.prng 1.0 < t.loss then b.dropped <- b.dropped + 1
    else if (match f.Faults.drop_when with Some p -> p ~now_ns:now ~nth wire_frame | None -> false)
    then begin
      b.dropped <- b.dropped + 1;
      b.script_dropped <- b.script_dropped + 1;
      Trace.incr c_script_drop
    end
    else if link_down f ~time:start then begin
      b.dropped <- b.dropped + 1;
      b.flap_dropped <- b.flap_dropped + 1;
      Trace.incr c_flap_drop
    end
    else begin
      (* Gilbert–Elliott channel. The chain advances one step per [slot_ns]
         of link time (at least one per frame): a channel in the Bad state
         recovers during idle gaps, so a sender retransmitting on a
         backed-off RTO is not doomed to meet the same burst forever. The
         k-step state is sampled in closed form with one PRNG draw:
         P(bad after k) = pi_b + (b0 - pi_b)·lambda^k, lambda = 1-p_gb-p_bg. *)
      let ge_drop =
        match f.Faults.ge with
        | None -> false
        | Some g ->
          let p_gb = g.Faults.p_good_bad and p_bg = g.Faults.p_bad_good in
          let steps = max 1 ((start - t.ge_last_ns) / max 1 g.Faults.slot_ns) in
          t.ge_last_ns <- start;
          let p_bad =
            if p_gb +. p_bg <= 0.0 then if t.ge_bad then 1.0 else 0.0
            else begin
              let pi_b = p_gb /. (p_gb +. p_bg) in
              let lam = 1.0 -. p_gb -. p_bg in
              let lamk = if lam = 0.0 then 0.0 else lam ** float_of_int steps in
              let b0 = if t.ge_bad then 1.0 else 0.0 in
              pi_b +. ((b0 -. pi_b) *. lamk)
            end
          in
          t.ge_bad <- Engine.Prng.float t.fault_prng 1.0 < p_bad;
          let p = if t.ge_bad then g.Faults.loss_bad else g.Faults.loss_good in
          p > 0.0 && Engine.Prng.float t.fault_prng 1.0 < p
      in
      if ge_drop then begin
        b.dropped <- b.dropped + 1;
        b.burst_dropped <- b.burst_dropped + 1;
        Trace.incr c_burst_drop
      end
      else begin
        let wire_frame, owner =
          if f.Faults.corrupt_p > 0.0 && Engine.Prng.float t.fault_prng 1.0 < f.Faults.corrupt_p
          then begin
            (* Copy-on-mutate: corruption gets a private copy so the
               sender's buffer (possibly pooled, possibly shared with a
               duplicate delivery already in flight) stays pristine. *)
            let c = Bytestruct.copy wire_frame in
            maybe_corrupt t c;
            (c, None)
          end
          else (wire_frame, owner)
        in
        let arrival =
          if f.Faults.jitter_ns > 0 then arrival + Engine.Prng.int t.fault_prng f.Faults.jitter_ns
          else arrival
        in
        let arrival =
          if f.Faults.reorder_p > 0.0 && Engine.Prng.float t.fault_prng 1.0 < f.Faults.reorder_p
          then begin
            b.reordered <- b.reordered + 1;
            Trace.incr c_reorder;
            arrival + 1 + Engine.Prng.int t.fault_prng f.Faults.reorder_extra_ns
          end
          else arrival
        in
        let dispatch time =
          match owner with
          | None -> ignore (Engine.Sim.at b.sim ~time (fun () -> forward b t wire_frame ~time))
          | Some pb ->
            (* One reference per scheduled delivery: the pool cannot
               recycle the buffer while it is on the wire, and receivers
               can retain it past the delivery via the ambient. *)
            Pktbuf.retain pb;
            ignore
              (Engine.Sim.at b.sim ~time (fun () ->
                   Pktbuf.with_current pb (fun () -> forward b t wire_frame ~time);
                   Pktbuf.release pb))
        in
        dispatch arrival;
        if f.Faults.dup_p > 0.0 && Engine.Prng.float t.fault_prng 1.0 < f.Faults.dup_p then begin
          b.duplicated <- b.duplicated + 1;
          Trace.incr c_duplicate;
          let dup_at = arrival + 1 + Engine.Prng.int t.fault_prng 50_000 in
          dispatch dup_at
        end
      end
    end
end

module Bridge = struct
  type t = bridge

  let create ?(static_fdb = false) sim =
    {
      sim;
      prng = Engine.Prng.split (Engine.Sim.prng sim);
      nics = [];
      nic_count = 0;
      detached_count = 0;
      static_fdb;
      table = Hashtbl.create 32;
      forwarded = 0;
      flooded = 0;
      dropped = 0;
      burst_dropped = 0;
      flap_dropped = 0;
      script_dropped = 0;
      corrupted = 0;
      duplicated = 0;
      reordered = 0;
      taps = [];
      services = Hashtbl.create 32;
      ad_seq = 0;
    }

  let new_nic t ?(bandwidth_bps = 1_000_000_000) ?(latency_ns = 30_000) ?(loss = 0.0) ~mac () =
    if String.length mac <> 6 then invalid_arg "Netsim.Bridge.new_nic: MAC must be 6 bytes";
    let nic =
      {
        mac;
        bandwidth_bps;
        latency_ns;
        loss;
        bridge = t;
        rx = None;
        tx_free_at = 0;
        frames_sent = 0;
        frames_received = 0;
        bytes_sent = 0;
        faults = Faults.none;
        fault_prng = Engine.Prng.create ~seed:0 ();
        ge_bad = false;
        ge_last_ns = 0;
        fault_nth = 0;
        attached = true;
      }
    in
    t.nics <- nic :: t.nics;
    t.nic_count <- t.nic_count + 1;
    if t.static_fdb then Hashtbl.replace t.table mac nic;
    nic

  (* Unplug a port: the NIC stops sending and receiving, its learned
     table entries are flushed, and it leaves the flood set. Models the
     toolstack tearing down a destroyed domain's vif.

     O(1) amortised: the port's own MAC entry goes now; entries learned
     for other source MACs on this port (rare) are evicted lazily at
     lookup in [Nic.forward], and the flood list is only compacted once
     detached ports outnumber live ones (relative order of survivors is
     preserved, so flood delivery order — and with it every downstream
     event — is unchanged). *)
  let detach t nic =
    if nic.attached then begin
      nic.attached <- false;
      nic.rx <- None;
      (match Hashtbl.find_opt t.table nic.mac with
      | Some port when port == nic -> Hashtbl.remove t.table nic.mac
      | _ -> ());
      t.detached_count <- t.detached_count + 1;
      if t.detached_count * 2 > t.nic_count then begin
        t.nics <- List.filter (fun n -> n.attached) t.nics;
        t.nic_count <- t.nic_count - t.detached_count;
        t.detached_count <- 0
      end
    end

  let set_loss _t nic p = nic.loss <- p

  let set_faults t nic f =
    nic.faults <- f;
    nic.fault_prng <- Engine.Prng.split t.prng;
    nic.ge_bad <- false;
    nic.ge_last_ns <- Engine.Sim.now t.sim;
    nic.fault_nth <- 0

  let forwarded t = t.forwarded
  let flooded t = t.flooded
  let dropped t = t.dropped

  let fault_counts t =
    {
      fc_burst_dropped = t.burst_dropped;
      fc_flap_dropped = t.flap_dropped;
      fc_script_dropped = t.script_dropped;
      fc_corrupted = t.corrupted;
      fc_duplicated = t.duplicated;
      fc_reordered = t.reordered;
    }

  let tap t f = t.taps <- f :: t.taps

  (* An mDNS-like service directory kept on the switch: appliances that
     expose an endpoint advertise (name, ip, port) at boot and the monitor
     discovers its scrape targets here instead of being configured with
     addresses. Re-advertising a name replaces the entry — and restamps
     it, so it moves to the end of the enumeration just as it did when
     this was an assoc list. O(1) either way, where the assoc-list
     rebuild was O(services) per boot/teardown. *)
  let advertise t ~name ~ip ~port =
    Hashtbl.replace t.services name (t.ad_seq, ip, port);
    t.ad_seq <- t.ad_seq + 1

  (* Deregistration on domain shutdown: a destroyed exporter must not
     linger in the directory, or the monitor keeps scraping a corpse
     (stale-series → rate-0 masks the death). *)
  let withdraw t ~name = Hashtbl.remove t.services name

  (* Advertisement order (oldest first): deterministic for a deterministic
     boot sequence. Enumeration pays an O(n log n) sort so that the hot
     advertise/withdraw path doesn't. *)
  let services t =
    Hashtbl.fold (fun name (seq, ip, port) acc -> (seq, (name, ip, port)) :: acc) t.services []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
end
