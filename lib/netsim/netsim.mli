(** Physical-network substrate: NICs attached to a learning-switch bridge
    through links with bandwidth, propagation latency, loss — and, for the
    chaos experiments, a composable per-link fault-injection layer.

    This stands in for the gigabit segment + Xen bridge of the paper's
    testbed. Frames are raw Ethernet (destination MAC in bytes 0-5, source
    in 6-11). Serialisation delay models link bandwidth: a NIC's transmit
    path is busy for [8·len/bandwidth] per frame, which is what caps iperf
    throughput in the Figure 8 reproduction.

    Every stochastic fault draws from a PRNG split from the simulator seed,
    so any fault schedule replays bit-for-bit: same seed, same program →
    the same frames dropped, corrupted, delayed and duplicated at the same
    virtual times. *)

(** Which side of the wire a tapped frame was observed on: [Tx] as it
    leaves the sending NIC (before the fault layer — frames the wire then
    drops are still observed leaving, like a capture on the sending
    host), [Rx] as it is delivered to a receiving NIC (post-fault:
    corruption, duplicates and reordering are visible, and flooded frames
    produce one [Rx] observation per receiving port). *)
type dir = Tx | Rx

(** Returned by {!Bridge.tap}; pass to {!Bridge.untap} to detach. *)
type tap_handle

(** Per-link fault model. All components compose; {!none} disables every
    one and draws nothing from the PRNG, leaving fault-free runs
    byte-identical to a build without this layer. *)
module Faults : sig
  (** Two-state Markov loss channel (Gilbert–Elliott). The chain takes one
      step ([p_good_bad] / [p_bad_good]) per [slot_ns] of link time — at
      least one per frame sent — then the frame is dropped with the state's
      loss probability. Evolving the chain in time rather than per frame
      observed means a channel stuck in Bad recovers across idle gaps: a
      sender retransmitting on a backed-off RTO sees a fresh channel, not
      the same burst frozen in amber. The multi-step state is sampled in
      closed form with a single PRNG draw, so cost is O(1) per frame. *)
  type gilbert_elliott = {
    p_good_bad : float;  (** P(Good → Bad) per slot *)
    p_bad_good : float;  (** P(Bad → Good) per slot *)
    loss_good : float;  (** drop probability in Good *)
    loss_bad : float;  (** drop probability in Bad *)
    slot_ns : int;  (** chain step duration (a "packet slot") *)
  }

  (** [burst_loss ~avg_loss ~burst_len ()] derives Gilbert–Elliott
      parameters with stationary loss rate [avg_loss], mean burst length
      [burst_len] slots, [loss_bad = 1] and [loss_good = 0]. [slot_ns]
      defaults to 100 µs. *)
  val burst_loss : ?slot_ns:int -> avg_loss:float -> burst_len:int -> unit -> gilbert_elliott

  type t

  val none : t

  (** Compose a fault schedule. All components default to off.
      - [ge]: bursty loss channel (see {!gilbert_elliott}).
      - [reorder]: [(p, extra_ns)] — with probability [p] a frame is held
        back a uniform extra delay in [1, extra_ns], letting later frames
        overtake it.
      - [duplicate]: probability a frame is delivered twice (the copy
        trails by up to 50 µs).
      - [corrupt]: probability of a single-bit flip inside the IP packet
        body (past the ethernet + IPv4 headers — the errors that evade the
        ethernet FCS and that the transport checksum must catch; non-IPv4
        frames are never corrupted).
      - [jitter_ns]: uniform extra latency in [0, jitter_ns) per frame.
      - [flap]: [(first_down_at_ns, down_ns, period_ns)] — from
        [first_down_at_ns] on, the link is dead for [down_ns] out of every
        [period_ns] (frames transmitted while down vanish).
      - [drop_when]: scripted drop predicate, called per frame with the
        virtual time and this NIC's 0-based frame index — the deterministic
        scalpel the unit tests use to kill one precise segment. *)
  val make :
    ?ge:gilbert_elliott ->
    ?reorder:float * int ->
    ?duplicate:float ->
    ?corrupt:float ->
    ?jitter_ns:int ->
    ?flap:int * int * int ->
    ?drop_when:(now_ns:int -> nth:int -> Bytestruct.t -> bool) ->
    unit ->
    t
end

module Nic : sig
  type t

  (** Six-byte MAC address of this NIC. *)
  val mac : t -> string

  (** Bridge-local link id (0, 1, 2… in attachment order), stable for the
      port's lifetime — the [link] value taps and captures report. *)
  val id : t -> int

  (** [send t frame] queues a frame for transmission. The wire is
      zero-copy: the frame view is delivered as-is, so the sender must
      not mutate the buffer until delivery. With [?owner], the backing
      pktbuf is retained per scheduled delivery (duplication schedules
      two) and released after each, and receivers see it as the ambient
      {!Pktbuf.current} during delivery — pool recycling waits for the
      wire. Without [?owner] the caller simply must not reuse the buffer
      (every in-tree raw sender builds a fresh frame per send). The one
      fault that writes — corruption — copies the frame first, so even
      a corrupted delivery never scribbles on the sender's storage. *)
  val send : ?owner:Pktbuf.t -> t -> Bytestruct.t -> unit

  (** Install the receive callback (frames destined to this NIC, broadcast,
      or flooded by the bridge). The frame is only guaranteed valid for
      the duration of the callback: retain the ambient pktbuf
      ([Pktbuf.retain_current]) or copy to keep it longer. *)
  val set_rx : t -> (Bytestruct.t -> unit) -> unit

  val frames_sent : t -> int
  val frames_received : t -> int
  val bytes_sent : t -> int
end

(** Counts of injected faults, bridge-wide (all links summed). *)
type fault_counts = {
  fc_burst_dropped : int;
  fc_flap_dropped : int;
  fc_script_dropped : int;
  fc_corrupted : int;
  fc_duplicated : int;
  fc_reordered : int;
}

module Bridge : sig
  type t

  (** [static_fdb] (default false) pre-programs each port's MAC into the
      forwarding table at {!new_nic} time, like static fdb entries on a
      Xen vif: a 10⁴-port boot storm then never floods to learn
      addresses. Off by default — the learning-switch behaviour of every
      existing scenario is untouched. *)
  val create : ?static_fdb:bool -> Engine.Sim.t -> t

  (** [new_nic t ~mac] attaches a NIC. Defaults: 1 Gb/s, 30 µs propagation
      latency, no loss, no faults. [loss] is a uniform per-frame drop
      probability (kept distinct from {!Faults} for the simple tests). *)
  val new_nic :
    t ->
    ?bandwidth_bps:int ->
    ?latency_ns:int ->
    ?loss:float ->
    mac:string ->
    unit ->
    Nic.t

  (** [set_loss t nic p] changes a link's drop probability mid-run (failure
      injection for the TCP tests). *)
  val set_loss : t -> Nic.t -> float -> unit

  (** [detach t nic] unplugs a port: the NIC stops sending and receiving,
      its learned MAC entries are flushed, and it leaves the flood set —
      the toolstack tearing down a destroyed domain's vif. Idempotent. *)
  val detach : t -> Nic.t -> unit

  (** [set_faults t nic f] installs a fault schedule on a link (replacing
      any previous one) and re-seeds the link's fault PRNG by splitting the
      bridge PRNG, so each installation starts a fresh deterministic
      stream. [Faults.none] restores a clean link. *)
  val set_faults : t -> Nic.t -> Faults.t -> unit

  val forwarded : t -> int
  val flooded : t -> int

  (** All drops: uniform loss + every dropping fault. *)
  val dropped : t -> int

  val fault_counts : t -> fault_counts

  (** [tap t f] observes every frame traversing the bridge (pcap-style):
      once with [dir = Tx] as it leaves the sending NIC — stamped with
      the virtual time serialisation begins, before the fault layer — and
      once with [dir = Rx] per NIC it is delivered to. [link] is the
      observing port's {!Nic.id}. When the frame is pktbuf-backed the
      backing buffer is the ambient {!Pktbuf.current} during the
      callback, so observers can retain instead of copying. Returns a
      handle for {!untap}. With no taps installed the per-frame cost is
      one null check. *)
  val tap : t -> (dir:dir -> link:int -> time_ns:int -> Bytestruct.t -> unit) -> tap_handle

  (** [untap t h] detaches a tap; unknown handles are ignored (clean
      observer teardown is idempotent). *)
  val untap : t -> tap_handle -> unit

  (** An mDNS-like service directory kept on the switch: appliances that
      expose an endpoint advertise [(name, ip, port)] at boot, and the
      monitor appliance discovers its scrape targets here. Re-advertising
      a name replaces the entry. *)
  val advertise : t -> name:string -> ip:string -> port:int -> unit

  (** [withdraw t ~name] removes a directory entry. Appliance shutdown
      calls this so a destroyed exporter cannot linger as a scrape target
      (the stale-series → rate-0 path would otherwise mask its death). *)
  val withdraw : t -> name:string -> unit

  (** Advertised services, oldest first (deterministic for a
      deterministic boot sequence). *)
  val services : t -> (string * string * int) list
end

(** Broadcast MAC, [ff:ff:ff:ff:ff:ff]. *)
val broadcast_mac : string

(** Render a six-byte MAC as [aa:bb:cc:dd:ee:ff]. *)
val mac_to_string : string -> string

(** [mac_of_int i] derives a locally-administered unicast MAC from an
    integer — handy for generating fleets of NICs. *)
val mac_of_int : int -> string

(** The fifth observability plane: wire-level capture.

    A {!Capture.t} is a bounded ring of recent frames matching a
    pcap-style filter, fed from a bridge tap ({!Capture.attach_bridge})
    or from per-vif capture points in the device layer (which call
    {!Capture.record} directly). Frames are held by reference per the
    pktbuf zero-copy discipline: {!Capture.record} retains the backing
    pool buffer and ring eviction releases it; only frames with no pool
    backing are copied, and then only up to the snaplen. {!Capture.to_pcap}
    renders a real libpcap file (tcpdump/Wireshark-readable);
    {!Capture.flows_json} is its JSONL sidecar carrying what classic pcap
    cannot — direction, link id and the {!Trace.Flow} id that
    [mirage_sim trace waterfall] prints, so a capture and a trace
    cross-reference.

    Captures also feed the flight recorder: while any capture is live, a
    {!Trace.Flight.trip} bundle freezes the last few captured frames of
    the implicated flow (matched by the ["port"]/["rport"] fields of the
    trip payload). *)
module Capture : sig
  (** {1 Filters} *)

  type filter

  (** Matches every frame. *)
  val filter_all : filter

  (** Parse the capture-filter language:
      [expr := term (or term)*], [term := fact (and fact)*],
      [fact := not fact | ( expr ) | prim], with primitives
      [tcp | udp | icmp | ip | arp], [[src|dst] host A.B.C.D],
      [[src|dst] port N] and [flag syn|ack|fin|rst|psh|urg] — e.g.
      ["tcp and port 80 and flag syn"]. The empty string is
      {!filter_all}. *)
  val parse_filter : string -> (filter, string) result

  (** [filter_matches f frame] — does [frame] (raw Ethernet) match? *)
  val filter_matches : filter -> Bytestruct.t -> bool

  (** {1 Capture sessions} *)

  type t

  (** [create ()] makes a capture ring. [capacity] (default 256) bounds
      retained frames — the ring keeps the most recent matches; [snaplen]
      (default 65535) caps stored bytes per frame; [filter] defaults to
      {!filter_all}. The capture is registered with the flight-recorder
      hook until {!close}. *)
  val create : ?name:string -> ?capacity:int -> ?snaplen:int -> ?filter:filter -> unit -> t

  val name : t -> string

  (** Feed the capture from every frame crossing a bridge (both
      directions). Call {!close} (or nothing — taps die with the bridge)
      to detach. *)
  val attach_bridge : t -> Bridge.t -> unit

  (** [record c ~dir ~link ~time_ns frame] — offer one frame to the
      capture (the per-vif capture points call this). Ownership: an
      explicit [?owner] pktbuf is retained, else the ambient
      {!Pktbuf.current} is; with neither, the frame bytes are copied up
      to the snaplen. *)
  val record : ?owner:Pktbuf.t -> t -> dir:dir -> link:int -> time_ns:int -> Bytestruct.t -> unit

  (** Frames that matched the filter since creation. *)
  val matched : t -> int

  (** Frames currently held in the ring. *)
  val stored : t -> int

  (** Matched frames the bounded ring has overwritten (each eviction
      releases the frame's pktbuf reference). *)
  val evicted : t -> int

  (** {1 Dumps} *)

  (** One ring entry, oldest first, decoded for display. *)
  type record_info = {
    r_t : int;  (** virtual timestamp, ns *)
    r_dir : dir;
    r_link : int;
    r_flow : int;  (** {!Trace.Flow} id, [-1] when none was ambient *)
    r_len : int;  (** original on-wire length *)
    r_summary : string;  (** tcpdump-style one-liner *)
  }

  val records : t -> record_info list

  (** The ring as a classic libpcap file (little-endian, usec
      timestamps from virtual time, linktype Ethernet). *)
  val to_pcap : t -> string

  (** JSONL sidecar for {!to_pcap}, one line per packet in file order:
      [{"idx","t_ns","dir","link","flow","len","summary"}]. *)
  val flows_json : t -> string

  (** tcpdump-style one-liner for a raw Ethernet frame. *)
  val summarize : Bytestruct.t -> string

  (** Drop all retained frames (releasing their references). *)
  val clear : t -> unit

  (** Detach from all bridges, drop retained frames, unregister from the
      flight-recorder hook. *)
  val close : t -> unit
end
