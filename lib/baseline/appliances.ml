(* Calibration (§4.4):
   - Figure 12: Mirage scales linearly to ~80 sessions/s (800 req/s) on one
     vCPU before going CPU-bound -> ~1.2 ms of appliance work per request;
     the nginx+fastCGI+web.py chain saturates at ~20 sessions/s (200 req/s)
     -> ~4.7 ms per request (Python handler + two IPC hops), and beyond its
     worker/fd pool it errors rather than queueing.
   - Figure 13: Apache2 serving a static page costs ~2.3 ms per connection
     (accept + worker dispatch + sendfile-less copy path with offload off);
     the Mirage static path ~1.55 ms. With the 15% per-extra-vCPU
     contention tax this lands the four bars in the paper's order. *)
let webpy_request_cost_ns = 4_700_000
let apache_request_cost_ns = 2_300_000
let mirage_request_cost_ns = 1_200_000
let mirage_static_cost_ns = 1_550_000

module Make (T : Device_sig.TCP) = struct
  module S = Uhttp.Server.Make (T)

  type t = {
    server : S.t;
    mutable active : int;
    max_concurrent : int;
    mutable rejected : int;
  }

  (* Public listener with the fd/worker limit. *)
  let listen_gated t tcp ~port =
    T.listen tcp ~port (fun flow ->
        if t.active >= t.max_concurrent then begin
          t.rejected <- t.rejected + 1;
          T.abort flow;
          Mthread.Promise.return ()
        end
        else begin
          t.active <- t.active + 1;
          Mthread.Promise.finalize
            (fun () -> S.handle_flow t.server flow)
            (fun () ->
              t.active <- t.active - 1;
              Mthread.Promise.return ())
        end)

  let nginx_webpy sim ~dom ~tcp ~port ?(max_concurrent = 64) handler =
    let wrapped req =
      (* fastCGI hop: two context switches and a pipe copy before Python
         runs; the interpreter cost is the dominant term and is charged by
         the server's per-request cost below. *)
      handler req
    in
    let server = S.create_detached sim ~dom ~per_request_cost_ns:webpy_request_cost_ns wrapped in
    let t = { server; active = 0; max_concurrent; rejected = 0 } in
    listen_gated t tcp ~port;
    t

  let apache_static sim ~dom ~tcp ~port ?(page = String.make 4096 'x') () =
    let handler _req =
      Mthread.Promise.return
        (Uhttp.Http_wire.response ~headers:[ ("Content-Type", "text/html") ] ~status:200 page)
    in
    let server = S.create_detached sim ~dom ~per_request_cost_ns:apache_request_cost_ns handler in
    (* mpm-worker: pool sized to vCPUs x 32 threads. *)
    let max_concurrent = 32 * Xensim.Domain.vcpus dom in
    let t = { server; active = 0; max_concurrent; rejected = 0 } in
    listen_gated t tcp ~port;
    t

  let requests_served t = S.requests_served t.server
  let connections_rejected t = t.rejected
end
