(** Conventional-OS web appliances — the Linux VMs the paper benchmarks
    Mirage against in §4.4 (Figures 12 and 13).

    Both reuse the real HTTP server and a transport satisfying
    {!Device_sig.TCP}; what makes them "conventional" is the cost
    structure: interpreter/IPC-heavy request handling, a bounded
    worker/file-descriptor pool that rejects overload (httperf's error
    count), and the [linux-pv] platform's syscall and copy taxes which
    the shared stack charges automatically. *)

module Make (T : Device_sig.TCP) : sig
  type t

  (** nginx + fastCGI + web.py serving the Twitter-like API (Figure 12's
      baseline). [handler] is the same application logic the Mirage
      appliance runs; the wrapper adds the Python-interpreter request cost
      and the fastCGI process hop, and aborts connections beyond
      [max_concurrent] (fd limit). *)
  val nginx_webpy :
    Engine.Sim.t ->
    dom:Xensim.Domain.t ->
    tcp:T.t ->
    port:int ->
    ?max_concurrent:int ->
    (Uhttp.Http_wire.request -> Uhttp.Http_wire.response Mthread.Promise.t) ->
    t

  (** Apache2 mpm-worker serving one static page (Figure 13's baseline);
      workers are sized to the domain's vCPUs. *)
  val apache_static :
    Engine.Sim.t ->
    dom:Xensim.Domain.t ->
    tcp:T.t ->
    port:int ->
    ?page:string ->
    unit ->
    t

  val requests_served : t -> int
  val connections_rejected : t -> int
end

(** Per-request vCPU costs (exposed for the analytical crosscheck). *)

val webpy_request_cost_ns : int

val apache_request_cost_ns : int

(** The lean Mirage dynamic-web handler cost (§4.4), for symmetry. *)
val mirage_request_cost_ns : int

val mirage_static_cost_ns : int
