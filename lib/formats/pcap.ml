let linktype_ethernet = 1

type packet = { ts_sec : int; ts_usec : int; len : int; data : string }
type file = { snaplen : int; linktype : int; packets : packet list }

let magic_usec = 0xa1b2c3d4
let magic_nsec = 0xa1b23c4d
let version_major = 2
let version_minor = 4

let add_u16le b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

let add_u32le b v =
  add_u16le b (v land 0xffff);
  add_u16le b ((v lsr 16) land 0xffff)

let add_header ?(snaplen = 65535) ?(linktype = linktype_ethernet) b =
  add_u32le b magic_usec;
  add_u16le b version_major;
  add_u16le b version_minor;
  add_u32le b 0 (* thiszone: GMT *);
  add_u32le b 0 (* sigfigs *);
  add_u32le b snaplen;
  add_u32le b linktype

let add_record b ~ts_sec ~ts_usec ~orig_len data =
  add_u32le b ts_sec;
  add_u32le b ts_usec;
  add_u32le b (String.length data);
  add_u32le b orig_len;
  Buffer.add_string b data

let add_packet b ~ts_ns ?orig_len data =
  let orig_len = match orig_len with Some n -> n | None -> String.length data in
  add_record b ~ts_sec:(ts_ns / 1_000_000_000)
    ~ts_usec:(ts_ns mod 1_000_000_000 / 1000)
    ~orig_len data

let to_string f =
  let b = Buffer.create 4096 in
  add_header ~snaplen:f.snaplen ~linktype:f.linktype b;
  List.iter
    (fun p -> add_record b ~ts_sec:p.ts_sec ~ts_usec:p.ts_usec ~orig_len:p.len p.data)
    f.packets;
  Buffer.contents b

let u32 ~le s off =
  let g i = Char.code s.[off + i] in
  if le then g 0 lor (g 1 lsl 8) lor (g 2 lsl 16) lor (g 3 lsl 24)
  else g 3 lor (g 2 lsl 8) lor (g 1 lsl 16) lor (g 0 lsl 24)

let u16 ~le s off =
  let g i = Char.code s.[off + i] in
  if le then g 0 lor (g 1 lsl 8) else g 1 lor (g 0 lsl 8)

let parse s =
  let n = String.length s in
  if n < 24 then Error "truncated: shorter than the 24-byte global header"
  else
    let magic_le = u32 ~le:true s 0 in
    let magic_be = u32 ~le:false s 0 in
    let le_nsec =
      if magic_le = magic_usec then Some (true, false)
      else if magic_le = magic_nsec then Some (true, true)
      else if magic_be = magic_usec then Some (false, false)
      else if magic_be = magic_nsec then Some (false, true)
      else None
    in
    match le_nsec with
    | None -> Error (Printf.sprintf "bad magic 0x%08x" magic_le)
    | Some (le, nsec) ->
        let major = u16 ~le s 4 and minor = u16 ~le s 6 in
        if major <> version_major then
          Error (Printf.sprintf "unsupported version %d.%d" major minor)
        else
          let snaplen = u32 ~le s 16 and linktype = u32 ~le s 20 in
          let rec records acc off =
            if off = n then Ok (List.rev acc)
            else if off + 16 > n then
              Error (Printf.sprintf "truncated record header at offset %d" off)
            else
              let ts_sec = u32 ~le s off in
              let frac = u32 ~le s (off + 4) in
              let incl = u32 ~le s (off + 8) in
              let orig = u32 ~le s (off + 12) in
              if incl > snaplen || incl > orig then
                Error
                  (Printf.sprintf "record at offset %d: incl_len %d > %s" off incl
                     (if incl > snaplen then "snaplen" else "orig_len"))
              else if off + 16 + incl > n then
                Error (Printf.sprintf "truncated record body at offset %d" off)
              else
                let data = String.sub s (off + 16) incl in
                let ts_usec = if nsec then frac / 1000 else frac in
                records
                  ({ ts_sec; ts_usec; len = orig; data } :: acc)
                  (off + 16 + incl)
          in
          Result.map
            (fun packets -> { snaplen; linktype; packets })
            (records [] 24)
