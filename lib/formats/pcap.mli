(** Classic libpcap file format (the tcpdump/Wireshark on-disk format):
    a 24-byte global header followed by [(16-byte record header, frame
    bytes)] pairs. Written little-endian with the standard magic
    [0xa1b2c3d4] (microsecond timestamps), version 2.4, and linktype 1
    (Ethernet) — readable by any stock tcpdump or Wireshark.

    The writer takes timestamps in integer nanoseconds (the simulator's
    virtual clock) and stores them as the classic format's
    seconds + microseconds pair, so a capture of a deterministic run is
    itself byte-deterministic. The reader parses what the writer emits
    (plus big-endian files, for completeness) and is the round-trip
    validator for the golden capture test.

    Classic pcap has no per-packet annotations (those are pcapng); flow
    ids and link metadata travel in a JSONL sidecar written next to the
    capture (see [Netsim.Capture]). *)

val linktype_ethernet : int

(** One captured record. [len] is the original frame length on the wire;
    [data] holds the stored bytes ([String.length data <= len] when the
    capture truncated at its snaplen). *)
type packet = { ts_sec : int; ts_usec : int; len : int; data : string }

type file = { snaplen : int; linktype : int; packets : packet list }

(** {1 Writing} *)

(** Append the 24-byte global header. [snaplen] defaults to 65535,
    [linktype] to {!linktype_ethernet}. *)
val add_header : ?snaplen:int -> ?linktype:int -> Buffer.t -> unit

(** [add_packet b ~ts_ns ~orig_len data] appends one record, converting
    the virtual-time nanosecond stamp to seconds + microseconds.
    [orig_len] defaults to [String.length data]. *)
val add_packet : Buffer.t -> ts_ns:int -> ?orig_len:int -> string -> unit

(** Serialise a parsed {!file} back to bytes — [to_string (parse s) = s]
    for any file this module wrote (the round-trip contract). *)
val to_string : file -> string

(** {1 Reading} *)

(** Parse a classic pcap file (either byte order; microsecond or
    nanosecond magic). [Error] describes the first malformed field. *)
val parse : string -> (file, string) result
