type t = {
  sim : Engine.Sim.t;
  stats : Xstats.t;
  evtchn : Evtchn.t;
  gnttab : Gnttab.t;
  xenstore : Xenstore.t;
  seal_patch : bool;
  mutable domains : Domain.t list;
  mutable next_domid : int;
}

exception Seal_unsupported

let create ?(seal_patch = true) sim =
  let stats = Xstats.create () in
  {
    sim;
    stats;
    evtchn = Evtchn.create ~sim ~stats;
    gnttab = Gnttab.create ~stats;
    xenstore = Xenstore.create ();
    seal_patch;
    domains = [];
    next_domid = 0;
  }

let create_domain t ~name ~mem_mib ~platform ?(vcpus = 1) () =
  let id = t.next_domid in
  t.next_domid <- id + 1;
  let d = Domain.create ~sim:t.sim ~stats:t.stats ~id ~name ~mem_mib ~platform ~vcpus () in
  t.domains <- d :: t.domains;
  if Trace.enabled () then
    Trace.emit ~dom:id ~cat:Trace.Boot
      ~payload:[ ("name", Trace.String name); ("mem_mib", Trace.Int mem_mib) ]
      "domain.create";
  d

let domain t id = List.find_opt (fun d -> d.Domain.id = id) t.domains

let seal t d =
  if not t.seal_patch then raise Seal_unsupported;
  Domain.hypercall d ~name:"seal";
  Pagetable.seal d.Domain.pagetable;
  t.stats.Xstats.seals <- t.stats.Xstats.seals + 1;
  if Trace.enabled () then Trace.emit ~dom:d.Domain.id ~cat:Trace.Boot "domain.seal"

let destroy ?(exit_code = -1) t d =
  Domain.shutdown d ~exit_code;
  t.domains <- List.filter (fun x -> x != d) t.domains

let domain_count t = List.length t.domains
