type t = {
  sim : Engine.Sim.t;
  stats : Xstats.t;
  evtchn : Evtchn.t;
  gnttab : Gnttab.t;
  xenstore : Xenstore.t;
  seal_patch : bool;
  (* Domain table keyed by id: boot storms create and destroy 10⁴+
     domains, so lookup/destroy must not scan.  Reports that need a
     stable order use [domains], which sorts by id — ids are handed out
     monotonically, so that matches creation order. *)
  domain_table : (int, Domain.t) Hashtbl.t;
  mutable next_domid : int;
}

exception Seal_unsupported

let create ?(seal_patch = true) sim =
  let stats = Xstats.create () in
  {
    sim;
    stats;
    evtchn = Evtchn.create ~sim ~stats;
    gnttab = Gnttab.create ~stats;
    xenstore = Xenstore.create ();
    seal_patch;
    domain_table = Hashtbl.create 64;
    next_domid = 0;
  }

let create_domain t ~name ~mem_mib ~platform ?(vcpus = 1) () =
  let id = t.next_domid in
  t.next_domid <- id + 1;
  let d = Domain.create ~sim:t.sim ~stats:t.stats ~id ~name ~mem_mib ~platform ~vcpus () in
  Hashtbl.replace t.domain_table id d;
  if Trace.enabled () then
    Trace.emit ~dom:id ~cat:Trace.Boot
      ~payload:[ ("name", Trace.String name); ("mem_mib", Trace.Int mem_mib) ]
      "domain.create";
  d

let domain t id = Hashtbl.find_opt t.domain_table id

let domains t =
  let ds = Hashtbl.fold (fun _ d acc -> d :: acc) t.domain_table [] in
  List.sort (fun a b -> compare a.Domain.id b.Domain.id) ds

let seal t d =
  if not t.seal_patch then raise Seal_unsupported;
  Domain.hypercall d ~name:"seal";
  Pagetable.seal d.Domain.pagetable;
  t.stats.Xstats.seals <- t.stats.Xstats.seals + 1;
  if Trace.enabled () then Trace.emit ~dom:d.Domain.id ~cat:Trace.Boot "domain.seal"

let destroy ?(exit_code = -1) t d =
  Domain.shutdown d ~exit_code;
  (* Crash postmortem: a positive exit code is an abnormal guest exit
     (0 is clean, -1 is an external kill/teardown) — freeze the flight
     bundle while the domain's ring is still intact. *)
  if Trace.Flight.enabled () && exit_code > 0 then
    Trace.Flight.trip ~dom:d.Domain.id
      ~payload:[ ("name", Trace.String d.Domain.name); ("exit_code", Trace.Int exit_code) ]
      ~reason:"domain.exit" ();
  (* Guard against a stale handle to an id that has since been reused:
     only remove the table entry if it is this very domain. *)
  (match Hashtbl.find_opt t.domain_table d.Domain.id with
  | Some x when x == d ->
    Hashtbl.remove t.domain_table d.Domain.id;
    (* Teardown audit: drop the domain's metric series too, or their
       read callbacks pin the dead domain's devices and stack — and the
       profiler/flight series, so retired domains leave no stale rows. *)
    Trace.Metrics.unregister_dom d.Domain.id;
    Trace.Prof.unregister_dom d.Domain.id;
    Trace.Flight.unregister_dom d.Domain.id
  | _ -> ())

let domain_count t = Hashtbl.length t.domain_table
