type grant_ref = int

exception Invalid_grant of grant_ref
exception Grant_busy of grant_ref
exception Permission_denied of grant_ref

(* [page] is lazy so a grant can promise storage without materialising
   it: netfront posts hundreds of receive buffers per vif as credit, and
   in a 10^4-domain storm most are never filled.  Eager pages would pin
   ~2 MiB per vif (511 slots x 4 KiB) for the vif's whole lifetime; the
   thunk allocates only when the peer actually maps or copies. *)
type entry = {
  dom : int;
  peer : int;
  writable : bool;
  page : Bytestruct.t Lazy.t;
  mutable mapped_by : int list;
}

type t = { stats : Xstats.t; entries : (grant_ref, entry) Hashtbl.t; mutable next_ref : int }

let c_map = Trace.counter "gnttab.map"
let c_copy = Trace.counter "gnttab.copy"

let trace_op op ~by r =
  if Trace.enabled () then begin
    Trace.incr (if op = "gnttab.map" then c_map else c_copy);
    Trace.emit ~dom:by ~cat:Trace.Gnttab ~payload:[ ("gref", Trace.Int r) ] op
  end

let create ~stats = { stats; entries = Hashtbl.create 128; next_ref = 8 }

let get t r =
  match Hashtbl.find_opt t.entries r with Some e -> e | None -> raise (Invalid_grant r)

let grant_lazy t ~dom ~peer ~writable page =
  let r = t.next_ref in
  t.next_ref <- t.next_ref + 1;
  Hashtbl.replace t.entries r { dom; peer; writable; page; mapped_by = [] };
  r

let grant_access t ~dom ~peer ~writable page =
  grant_lazy t ~dom ~peer ~writable (Lazy.from_val page)

let grant_access_lazy t ~dom ~peer ~writable alloc =
  grant_lazy t ~dom ~peer ~writable (Lazy.from_fun alloc)

let map t ~by r =
  let e = get t r in
  if e.peer <> by then raise (Permission_denied r);
  e.mapped_by <- by :: e.mapped_by;
  t.stats.Xstats.grant_maps <- t.stats.Xstats.grant_maps + 1;
  trace_op "gnttab.map" ~by r;
  Lazy.force e.page

let map_rw t ~by r =
  let e = get t r in
  if not e.writable then raise (Permission_denied r);
  map t ~by r

let unmap t ~by r =
  let e = get t r in
  let rec remove_one = function
    | [] -> []
    | d :: rest when d = by -> rest
    | d :: rest -> d :: remove_one rest
  in
  e.mapped_by <- remove_one e.mapped_by

let copy t ~by r ~dst =
  let e = get t r in
  if e.peer <> by then raise (Permission_denied r);
  t.stats.Xstats.grant_copies <- t.stats.Xstats.grant_copies + 1;
  trace_op "gnttab.copy" ~by r;
  let page = Lazy.force e.page in
  let len = min (Bytestruct.length page) (Bytestruct.length dst) in
  Bytestruct.blit page 0 dst 0 len

let copy_to t ~by r ~src =
  let e = get t r in
  if e.peer <> by || not e.writable then raise (Permission_denied r);
  t.stats.Xstats.grant_copies <- t.stats.Xstats.grant_copies + 1;
  trace_op "gnttab.copy" ~by r;
  let page = Lazy.force e.page in
  let len = min (Bytestruct.length page) (Bytestruct.length src) in
  Bytestruct.blit src 0 page 0 len

let end_access t r =
  let e = get t r in
  if e.mapped_by <> [] then raise (Grant_busy r);
  Hashtbl.remove t.entries r

let active_grants t = Hashtbl.length t.entries

let is_mapped t r = (get t r).mapped_by <> []
