(* Free-running indices live in the shared page as unsigned 32-bit values;
   we keep them as OCaml ints in [0, 2^32) and wrap explicitly, matching the
   C macros' modular arithmetic. *)

let u32 x = x land 0xFFFFFFFF

let header_bytes = 64

let c_req_pushed = Trace.counter "ring.req_pushed"
let c_rsp_pushed = Trace.counter "ring.rsp_pushed"
let c_req_consumed = Trace.counter "ring.req_consumed"
let c_rsp_consumed = Trace.counter "ring.rsp_consumed"

let trace_push counter name ~n ~notify =
  if n > 0 && Trace.enabled () then begin
    Trace.add counter n;
    Trace.emit ~cat:Trace.Ring
      ~payload:[ ("n", Trace.Int n); ("notify", Trace.Bool notify) ]
      name
  end

let trace_consume counter name ~n =
  if n > 0 && Trace.enabled () then begin
    Trace.add counter n;
    Trace.emit ~cat:Trace.Ring ~payload:[ ("n", Trace.Int n) ] name
  end

module Sring = struct
  type t = { page : Bytestruct.t; slot_bytes : int; nr_slots : int }

  let geometry page ~slot_bytes =
    if slot_bytes <= 0 then invalid_arg "Sring: slot_bytes must be positive";
    let space = Bytestruct.length page - header_bytes in
    if space < slot_bytes then invalid_arg "Sring: page too small for one slot";
    let raw = space / slot_bytes in
    (* Round down to a power of two so index wrapping is a mask. *)
    let rec pow2 acc = if acc * 2 <= raw then pow2 (acc * 2) else acc in
    pow2 1

  let attach page ~slot_bytes = { page; slot_bytes; nr_slots = geometry page ~slot_bytes }

  let init page ~slot_bytes =
    let t = attach page ~slot_bytes in
    (* As RING_INIT: producers at 0, event thresholds armed at 1 so the
       very first push triggers a notification. *)
    Bytestruct.LE.set_uint32 page 0 0l;
    Bytestruct.LE.set_uint32 page 4 1l;
    Bytestruct.LE.set_uint32 page 8 0l;
    Bytestruct.LE.set_uint32 page 12 1l;
    t

  let nr_slots t = t.nr_slots

  let slot t i =
    let idx = i land (t.nr_slots - 1) in
    Bytestruct.sub t.page (header_bytes + (idx * t.slot_bytes)) t.slot_bytes

  let get t off = u32 (Int32.to_int (Bytestruct.LE.get_uint32 t.page off))
  let set t off v = Bytestruct.LE.set_uint32 t.page off (Int32.of_int (u32 v))

  let req_prod t = get t 0
  let set_req_prod t v = set t 0 v
  let req_event t = get t 4
  let set_req_event t v = set t 4 v
  let rsp_prod t = get t 8
  let set_rsp_prod t v = set t 8 v
  let rsp_event t = get t 12
  let set_rsp_event t v = set t 12 v
end

(* Unsigned-wrapping difference a - b (mod 2^32). *)
let diff a b = u32 (a - b)

module Front = struct
  type t = { sring : Sring.t; mutable req_prod_pvt : int; mutable rsp_cons : int }

  let init sring = { sring; req_prod_pvt = 0; rsp_cons = 0 }

  let free_requests t = Sring.nr_slots t.sring - diff t.req_prod_pvt t.rsp_cons

  let next_request t =
    if free_requests t = 0 then failwith "Ring.Front.next_request: ring full";
    let s = Sring.slot t.sring t.req_prod_pvt in
    t.req_prod_pvt <- u32 (t.req_prod_pvt + 1);
    s

  let push_requests_and_check_notify t =
    let old = Sring.req_prod t.sring in
    let fresh = t.req_prod_pvt in
    Sring.set_req_prod t.sring fresh;
    (* notify iff the producer advanced past req_event: the consumer armed
       the event and went to sleep before these requests landed. *)
    let notify = diff fresh (Sring.req_event t.sring) < diff fresh old in
    trace_push c_req_pushed "ring.push_req" ~n:(diff fresh old) ~notify;
    notify

  let has_unconsumed_responses t = diff (Sring.rsp_prod t.sring) t.rsp_cons > 0

  let consume_responses t f =
    let handled = ref 0 in
    let rec loop () =
      while has_unconsumed_responses t do
        let s = Sring.slot t.sring t.rsp_cons in
        t.rsp_cons <- u32 (t.rsp_cons + 1);
        incr handled;
        f s
      done;
      (* Final check: arm the event, then look again to close the race
         where the producer published between our loop and the arm. *)
      Sring.set_rsp_event t.sring (u32 (t.rsp_cons + 1));
      if has_unconsumed_responses t then loop ()
    in
    loop ();
    trace_consume c_rsp_consumed "ring.consume_rsp" ~n:!handled;
    !handled
end

module Back = struct
  type t = { sring : Sring.t; mutable rsp_prod_pvt : int; mutable req_cons : int }

  let init sring = { sring; rsp_prod_pvt = 0; req_cons = 0 }

  let has_unconsumed_requests t = diff (Sring.req_prod t.sring) t.req_cons > 0

  let consume_requests t f =
    let handled = ref 0 in
    let rec loop () =
      while has_unconsumed_requests t do
        let s = Sring.slot t.sring t.req_cons in
        t.req_cons <- u32 (t.req_cons + 1);
        incr handled;
        f s
      done;
      Sring.set_req_event t.sring (u32 (t.req_cons + 1));
      if has_unconsumed_requests t then loop ()
    in
    loop ();
    trace_consume c_req_consumed "ring.consume_req" ~n:!handled;
    !handled

  let next_response t =
    let s = Sring.slot t.sring t.rsp_prod_pvt in
    t.rsp_prod_pvt <- u32 (t.rsp_prod_pvt + 1);
    s

  let push_responses_and_check_notify t =
    let old = Sring.rsp_prod t.sring in
    let fresh = t.rsp_prod_pvt in
    Sring.set_rsp_prod t.sring fresh;
    let notify = diff fresh (Sring.rsp_event t.sring) < diff fresh old in
    trace_push c_rsp_pushed "ring.push_rsp" ~n:(diff fresh old) ~notify;
    notify
end
