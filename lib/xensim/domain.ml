type state = Building | Running | Blocked | Shutdown of int

let c_hypercall = Trace.counter "xen.hypercalls"

type t = {
  id : int;
  name : string;
  mem_mib : int;
  platform : Platform.t;
  sim : Engine.Sim.t;
  stats : Xstats.t;
  pagetable : Pagetable.t;
  mutable state : state;
  cpu_free_at : int array;
  mutable busy_ns : int;
}

let create ~sim ~stats ~id ~name ~mem_mib ~platform ?(vcpus = 1) () =
  if vcpus < 1 then invalid_arg "Domain.create: need at least one vCPU";
  {
    id;
    name;
    mem_mib;
    platform;
    sim;
    stats;
    pagetable = Pagetable.create ();
    state = Building;
    cpu_free_at = Array.make vcpus 0;
    busy_ns = 0;
  }

let vcpus d = Array.length d.cpu_free_at

(* SMP tax: shared run-queues, locks and cache traffic make each unit of
   work dearer as vCPUs are added — the reason Figure 13's scale-out
   configurations beat scale-up. *)
let contention_factor d = 1.0 +. (0.15 *. float_of_int (vcpus d - 1))

let reserve_slice d cost =
  let cost = int_of_float (float_of_int (max 0 cost) *. contention_factor d) in
  let now = Engine.Sim.now d.sim in
  (* Least-loaded vCPU. *)
  let lane = ref 0 in
  Array.iteri (fun i v -> if v < d.cpu_free_at.(!lane) then lane := i) d.cpu_free_at;
  let start = max now d.cpu_free_at.(!lane) in
  let finish = start + cost in
  d.cpu_free_at.(!lane) <- finish;
  d.busy_ns <- d.busy_ns + cost;
  Engine.Sim.vcpu_account d.sim ~dom:d.id ~run_ns:cost ~wait_ns:(start - now);
  (* Profiler tick: every vCPU nanosecond charged lands on the ambient
     layer stack (the scheduler re-installs it across deferred hops). *)
  if Trace.Prof.enabled () then Trace.Prof.account ~dom:d.id ~wait_ns:(start - now) cost;
  (start, finish)

let reserve d cost = snd (reserve_slice d cost)

(* Runs when the slice completes: retro-record the wakeup latency
   [queued, start] and the execution [start, finish] so the offline
   analyzer can split a flow's gap into queueing vs. processing.
   lag_ns positions vcpu.wait relative to the event's own timestamp
   (which is [finish] in the trace clock's re-based timeline), keeping
   the payload valid across consecutive simulator instances. *)
let note_slice d ~queued ~start ~finish () =
  if Trace.enabled () then begin
    Trace.record_span_ns ~dom:d.id
      ~payload:[ ("lag_ns", Trace.Int (finish - start)) ]
      ~cat:Trace.Sched "vcpu.wait" (start - queued);
    Trace.record_span_ns ~dom:d.id ~cat:Trace.Sched "vcpu.run" (finish - start)
  end

let charge d ~cost =
  let queued = Engine.Sim.now d.sim in
  let start, finish = reserve_slice d cost in
  let p = Mthread.Promise.sleep d.sim (finish - queued) in
  if Trace.enabled () then Mthread.Promise.map (note_slice d ~queued ~start ~finish) p else p

let charge_k d ~cost k =
  let queued = Engine.Sim.now d.sim in
  let start, finish = reserve_slice d cost in
  let k =
    if Trace.enabled () then (
      fun () ->
        note_slice d ~queued ~start ~finish ();
        k ())
    else k
  in
  ignore (Engine.Sim.at d.sim ~time:finish k)

let utilisation d ~span_ns =
  if span_ns <= 0 then 0.0
  else float_of_int d.busy_ns /. float_of_int (span_ns * vcpus d)

let hypercall d ~name =
  d.stats.Xstats.hypercalls <- d.stats.Xstats.hypercalls + 1;
  if Trace.enabled () then begin
    Trace.incr c_hypercall;
    Trace.emit ~dom:d.id ~cat:Trace.Hypercall name
  end;
  ignore (reserve d d.platform.Platform.hypercall_ns)

let shutdown d ~exit_code = d.state <- Shutdown exit_code

let is_running d = match d.state with Running -> true | Building | Blocked | Shutdown _ -> false

let pp fmt d = Format.fprintf fmt "dom%d(%s)" d.id d.name
