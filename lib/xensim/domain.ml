type state = Building | Running | Blocked | Shutdown of int

let c_hypercall = Trace.counter "xen.hypercalls"

type t = {
  id : int;
  name : string;
  mem_mib : int;
  platform : Platform.t;
  sim : Engine.Sim.t;
  stats : Xstats.t;
  pagetable : Pagetable.t;
  mutable state : state;
  cpu_free_at : int array;
  mutable busy_ns : int;
}

let create ~sim ~stats ~id ~name ~mem_mib ~platform ?(vcpus = 1) () =
  if vcpus < 1 then invalid_arg "Domain.create: need at least one vCPU";
  {
    id;
    name;
    mem_mib;
    platform;
    sim;
    stats;
    pagetable = Pagetable.create ();
    state = Building;
    cpu_free_at = Array.make vcpus 0;
    busy_ns = 0;
  }

let vcpus d = Array.length d.cpu_free_at

(* SMP tax: shared run-queues, locks and cache traffic make each unit of
   work dearer as vCPUs are added — the reason Figure 13's scale-out
   configurations beat scale-up. *)
let contention_factor d = 1.0 +. (0.15 *. float_of_int (vcpus d - 1))

let reserve d cost =
  let cost = int_of_float (float_of_int (max 0 cost) *. contention_factor d) in
  let now = Engine.Sim.now d.sim in
  (* Least-loaded vCPU. *)
  let lane = ref 0 in
  Array.iteri (fun i v -> if v < d.cpu_free_at.(!lane) then lane := i) d.cpu_free_at;
  let start = max now d.cpu_free_at.(!lane) in
  let finish = start + cost in
  d.cpu_free_at.(!lane) <- finish;
  d.busy_ns <- d.busy_ns + cost;
  finish

let charge d ~cost =
  let finish = reserve d cost in
  Mthread.Promise.sleep d.sim (finish - Engine.Sim.now d.sim)

let charge_k d ~cost k =
  let finish = reserve d cost in
  ignore (Engine.Sim.at d.sim ~time:finish k)

let utilisation d ~span_ns =
  if span_ns <= 0 then 0.0
  else float_of_int d.busy_ns /. float_of_int (span_ns * vcpus d)

let hypercall d ~name =
  d.stats.Xstats.hypercalls <- d.stats.Xstats.hypercalls + 1;
  if Trace.enabled () then begin
    Trace.incr c_hypercall;
    Trace.emit ~dom:d.id ~cat:Trace.Hypercall name
  end;
  ignore (reserve d d.platform.Platform.hypercall_ns)

let shutdown d ~exit_code = d.state <- Shutdown exit_code

let is_running d = match d.state with Running -> true | Building | Blocked | Shutdown _ -> false

let pp fmt d = Format.fprintf fmt "dom%d(%s)" d.id d.name
