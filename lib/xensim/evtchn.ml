type port = int

exception Invalid_port of port

type port_state = {
  owner : int;
  mutable peer : port option;
  mutable handler : (unit -> unit) option;
  mutable masked : bool;
  mutable pending : bool;
  mutable closed : bool;
}

type t = {
  sim : Engine.Sim.t;
  stats : Xstats.t;
  ports : (port, port_state) Hashtbl.t;
  mutable next_port : int;
}

(* Event delivery latency: the upcall into the guest after the hypervisor
   sets the pending bit. *)
let delivery_latency_ns = 700

let c_notify = Trace.counter "evtchn.notify"
let c_deliver = Trace.counter "evtchn.deliver"

(* Same counter as Domain.hypercall (interned by name): a notify *is* the
   EVTCHNOP_send hypercall, and it is the only hypercall on the data path. *)
let c_hypercall = Trace.counter "xen.hypercalls"

let create ~sim ~stats = { sim; stats; ports = Hashtbl.create 64; next_port = 1 }

let get t p =
  match Hashtbl.find_opt t.ports p with
  | Some st when not st.closed -> st
  | Some _ | None -> raise (Invalid_port p)

let fresh t ~owner =
  let p = t.next_port in
  t.next_port <- t.next_port + 1;
  Hashtbl.replace t.ports p
    { owner; peer = None; handler = None; masked = false; pending = false; closed = false };
  p

let alloc_unbound t ~owner = fresh t ~owner

let bind_interdomain t ~local ~remote_port =
  let remote = get t remote_port in
  if remote.peer <> None then raise (Invalid_port remote_port);
  let p = fresh t ~owner:local in
  let local_state = get t p in
  local_state.peer <- Some remote_port;
  remote.peer <- Some p;
  p

let set_handler t p f = (get t p).handler <- Some f

let deliver t p =
  let st = get t p in
  if st.pending && not st.masked then begin
    match st.handler with
    | None -> ()
    | Some f ->
      st.pending <- false;
      if Trace.enabled () then begin
        Trace.incr c_deliver;
        Trace.emit ~dom:st.owner ~cat:Trace.Evtchn ~payload:[ ("port", Trace.Int p) ]
          "evtchn.deliver"
      end;
      f ()
  end

let notify t p =
  let st = get t p in
  t.stats.Xstats.hypercalls <- t.stats.Xstats.hypercalls + 1;
  t.stats.Xstats.evtchn_notifies <- t.stats.Xstats.evtchn_notifies + 1;
  if Trace.enabled () then begin
    Trace.incr c_notify;
    Trace.incr c_hypercall;
    Trace.emit ~dom:st.owner ~cat:Trace.Hypercall ~payload:[ ("port", Trace.Int p) ] "evtchn_send";
    Trace.emit ~dom:st.owner ~cat:Trace.Evtchn ~payload:[ ("port", Trace.Int p) ] "evtchn.notify"
  end;
  match st.peer with
  | None -> ()
  | Some peer_port ->
    let peer = get t peer_port in
    if not peer.pending then begin
      peer.pending <- true;
      let t0 = if Trace.enabled () then Engine.Sim.now t.sim else 0 in
      ignore
        (Engine.Sim.schedule t.sim ~delay:delivery_latency_ns (fun () ->
             if not peer.closed then begin
               if Trace.enabled () then
                 Trace.record_span_ns ~dom:peer.owner ~cat:Trace.Evtchn "evtchn.wakeup"
                   (Engine.Sim.now t.sim - t0);
               deliver t peer_port
             end))
    end

let mask t p =
  let st = get t p in
  st.masked <- true;
  if Trace.enabled () then
    Trace.emit ~dom:st.owner ~cat:Trace.Evtchn ~payload:[ ("port", Trace.Int p) ] "evtchn.mask"

let unmask t p =
  let st = get t p in
  st.masked <- false;
  if Trace.enabled () then
    Trace.emit ~dom:st.owner ~cat:Trace.Evtchn ~payload:[ ("port", Trace.Int p) ] "evtchn.unmask";
  if st.pending then ignore (Engine.Sim.schedule t.sim ~delay:0 (fun () -> if not st.closed then deliver t p))

let is_pending t p = (get t p).pending

(* Closing actually frees the port table entries (both ends of a bound
   pair).  Dropping the entry is what releases the handler closure — a
   netif handler closes over the whole device (rings, page pool), so a
   close that merely flagged the port would pin every destroyed domain's
   device state for the lifetime of the hypervisor.  In-flight deliveries
   hold the [port_state] record directly and check [closed], so removal
   is safe; [close] is idempotent because teardown paths race. *)
let close t p =
  match Hashtbl.find_opt t.ports p with
  | None -> ()
  | Some st ->
    st.closed <- true;
    st.handler <- None;
    Hashtbl.remove t.ports p;
    (match st.peer with
    | None -> ()
    | Some q -> (
      match Hashtbl.find_opt t.ports q with
      | Some peer ->
        peer.peer <- None;
        peer.closed <- true;
        peer.handler <- None;
        Hashtbl.remove t.ports q
      | None -> ()))

let owner t p = (get t p).owner
let peer t p = (get t p).peer
