(** Grant tables: page-granularity memory sharing checked by the hypervisor
    (paper §3.4.1).

    A domain grants a peer access to one of its pages and passes the small
    integer grant reference over a device ring; the peer maps it (a shared
    view — genuinely zero-copy in this model, since views alias storage) or
    asks the hypervisor to copy it. Revoking an actively-mapped grant is
    refused, mirroring Xen's busy-grant behaviour. *)

type t
type grant_ref = int

exception Invalid_grant of grant_ref
exception Grant_busy of grant_ref
exception Permission_denied of grant_ref

val create : stats:Xstats.t -> t

(** [grant_access t ~dom ~peer ~writable page] shares [page] (owned by
    domain [dom]) with [peer]. *)
val grant_access :
  t -> dom:int -> peer:int -> writable:bool -> Bytestruct.t -> grant_ref

(** [grant_access_lazy t ~dom ~peer ~writable alloc] grants a page that is
    only materialised (by calling [alloc] once) when the peer first maps or
    copies through the grant. Receive credit posted on device rings is the
    intended user: netfront posts hundreds of buffers per vif, and in a
    large boot storm most are revoked without ever carrying a frame —
    backing them eagerly would pin pages for the vif's whole lifetime. *)
val grant_access_lazy :
  t -> dom:int -> peer:int -> writable:bool -> (unit -> Bytestruct.t) -> grant_ref

(** [map t ~by ref] returns a view aliasing the granted page.
    @raise Permission_denied when [by] is not the grantee. *)
val map : t -> by:int -> grant_ref -> Bytestruct.t

(** Mapping for writing; @raise Permission_denied on read-only grants. *)
val map_rw : t -> by:int -> grant_ref -> Bytestruct.t

val unmap : t -> by:int -> grant_ref -> unit

(** Hypervisor-mediated copy into [dst] (the non-zero-copy fallback path). *)
val copy : t -> by:int -> grant_ref -> dst:Bytestruct.t -> unit

(** Hypervisor-mediated copy of [src] into the granted page (netback's
    receive path, GNTTABOP_copy). @raise Permission_denied unless the grant
    is writable and [by] is the grantee. *)
val copy_to : t -> by:int -> grant_ref -> src:Bytestruct.t -> unit

(** [end_access t ref] revokes the grant.
    @raise Grant_busy while the peer still has it mapped. *)
val end_access : t -> grant_ref -> unit

(** Number of live (unrevoked) grants — leak detection in tests. *)
val active_grants : t -> int

val is_mapped : t -> grant_ref -> bool
