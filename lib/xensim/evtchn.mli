(** Xen event channels: the asynchronous notification primitive connecting
    frontend and backend drivers (paper §3.4).

    An interdomain channel is a pair of ports. [notify] on one port raises
    a (level-triggered) pending event on the peer; a registered handler runs
    after the event-delivery latency unless the port is masked, in which
    case delivery happens on unmask. *)

type t
type port = int

exception Invalid_port of port

val create : sim:Engine.Sim.t -> stats:Xstats.t -> t

(** [alloc_unbound t ~owner] reserves a half-open port for [owner] (a domain
    id), to be connected by a later {!bind_interdomain} from the peer. *)
val alloc_unbound : t -> owner:int -> port

(** [bind_interdomain t ~local ~remote_port] allocates a local port and
    connects it to [remote_port]. @raise Invalid_port if already bound. *)
val bind_interdomain : t -> local:int -> remote_port:port -> port

(** Register the callback run when an event lands on [port]. *)
val set_handler : t -> port -> (unit -> unit) -> unit

(** Raise an event on the peer of [port]; costs one hypercall's worth of
    latency before delivery. *)
val notify : t -> port -> unit

val mask : t -> port -> unit
val unmask : t -> port -> unit
val is_pending : t -> port -> bool

(** Close both halves of the channel and free their port table entries —
    including the registered handlers, so device state captured by a
    handler closure becomes collectable. Idempotent: closing an unknown or
    already-closed port is a no-op. Any in-flight delivery for the port is
    dropped. *)
val close : t -> port -> unit

val owner : t -> port -> int
val peer : t -> port -> port option
