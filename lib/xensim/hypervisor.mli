(** The simulated hypervisor: domain table plus the shared facilities
    (event channels, grant tables, XenStore).

    [seal_patch] models the paper's optional <50-line Xen extension
    (§2.3.3): when absent, unikernels still run but the seal hypercall is
    refused and the defence-in-depth layer is lost, exactly as the paper
    describes for unmodified Xen. *)

type t = {
  sim : Engine.Sim.t;
  stats : Xstats.t;
  evtchn : Evtchn.t;
  gnttab : Gnttab.t;
  xenstore : Xenstore.t;
  seal_patch : bool;
  domain_table : (int, Domain.t) Hashtbl.t;
  mutable next_domid : int;
}

exception Seal_unsupported

val create : ?seal_patch:bool -> Engine.Sim.t -> t

(** Allocate a domain record (state [Building]); the toolstack runs the
    boot sequence. *)
val create_domain :
  t -> name:string -> mem_mib:int -> platform:Platform.t -> ?vcpus:int -> unit -> Domain.t

(** O(1) lookup by domain id. *)
val domain : t -> int -> Domain.t option

(** All live domains, sorted by id (= creation order, ids being
    monotonic) so reports iterate deterministically. *)
val domains : t -> Domain.t list

(** The seal hypercall (§2.3.3).
    @raise Seal_unsupported on an unpatched hypervisor
    @raise Pagetable.Sealed_violation on a double seal. *)
val seal : t -> Domain.t -> unit

(** Remove the domain from the domain table and mark it shut down.
    [exit_code] defaults to [-1] (killed); an orderly teardown
    ([Appliance.Handle.shutdown]) passes [0]. *)
val destroy : ?exit_code:int -> t -> Domain.t -> unit

val domain_count : t -> int
