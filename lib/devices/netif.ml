(* Ring slot layout (16 bytes, little-endian, shared by requests and
   responses exactly as Xen's netif structs are):
     TX request:  id u16@0, size u16@2, gref u32@4
     TX response: id u16@0, status u16@2
     RX request:  id u16@0, gref u32@4
     RX response: id u16@0, size u16@2 *)

let slot_bytes = 16
let mtu_bytes = 1500
let backend_per_packet_ns = 1_600 (* dom0 netback work per frame *)

(* TSO-style doorbell coalescing: when on, TX requests accumulate on the
   ring and one event-channel notify covers the batch (flushed after
   [tx_flush_delay_ns] or [tx_batch_max] frames, whichever first). Off
   by default — the per-frame doorbell keeps wire behaviour, and thus
   every figure, bit-identical. *)
let tx_batching = ref false
let tx_flush_delay_ns = ref 10_000
let tx_batch_max = 32
let set_tx_batching ?(flush_delay_ns = 10_000) on =
  tx_batching := on;
  tx_flush_delay_ns := flush_delay_ns

let c_doorbell = Trace.counter "netif.tx_doorbells"

(* Instantaneous ring occupancy across all PV netifs in the process;
   deltas at the grant/response sites keep the aggregate current. *)
let g_tx_inflight = Trace.gauge "netif.tx_inflight"
let g_rx_posted = Trace.gauge "netif.rx_posted"

type tx_pending = {
  gref : Xensim.Gnttab.grant_ref;
  waker : unit Mthread.Promise.u;
  span : Trace.span;  (* request enqueue -> TX response *)
  flow : Trace.Flow.id;  (* causal flow of the sender, for the backend *)
  owner : Pktbuf.t option;  (* TX buffer ref, released on TX response *)
}

type pv = {
  hv : Xensim.Hypervisor.t;
  dom : Xensim.Domain.t;
  backend_dom : Xensim.Domain.t;
  nic : Netsim.Nic.t;
  pool : Pktbuf.pool;
  tx_front : Xensim.Ring.Front.t;
  tx_back : Xensim.Ring.Back.t;
  rx_front : Xensim.Ring.Front.t;
  rx_back : Xensim.Ring.Back.t;
  tx_port_front : Xensim.Evtchn.port;  (* notify -> backend wakes *)
  tx_port_back : Xensim.Evtchn.port;  (* notify -> frontend wakes *)
  rx_port_front : Xensim.Evtchn.port;
  rx_port_back : Xensim.Evtchn.port;
  tx_pending : (int, tx_pending) Hashtbl.t;
  rx_posted : (int, Xensim.Gnttab.grant_ref * Pktbuf.t Lazy.t) Hashtbl.t;
  rx_spans : (int, Trace.span) Hashtbl.t;  (* backend copy -> guest delivery *)
  rx_flows : (int, Trace.Flow.id) Hashtbl.t;  (* per-slot flow: one evtchn batch mixes flows *)
  rx_avail : (int * Xensim.Gnttab.grant_ref) Queue.t;  (* backend side *)
  tx_waiters : unit Mthread.Promise.u Queue.t;
  mutable listener : (Bytestruct.t -> unit) option;
  mutable next_tx_id : int;
  mutable next_rx_id : int;
  mutable tx_frames : int;
  mutable rx_frames : int;
  mutable rx_dropped : int;
  mutable tx_unflushed : int;  (* requests on the ring since last doorbell *)
  mutable tx_flush_pending : bool;
  mutable closed : bool;
  (* Per-vif wire capture: frames as this guest's device sees them (TX at
     the ring, RX at delivery), as opposed to a bridge-wide tap. One null
     check per frame when unset; cleared at disconnect. *)
  mutable capture : Netsim.Capture.t option;
}

(* Direct (non-PV) attachment: the NIC is a host-kernel device, so there
   is no backend domain, no rings, no grants — the guest-side cost model
   is the whole story. With [d_frame_tax] the domain pays the full
   userspace receive/transmit path per frame plus a syscall (the tuntap
   read/write of Posix_direct); without it only the host kernel's
   per-packet softirq work is charged (the in-kernel stack beneath
   Hostnet's sockets, which adds its own syscall/copy tax per socket
   operation instead). *)
type direct = {
  d_dom : Xensim.Domain.t;
  d_nic : Netsim.Nic.t;
  d_pool : Pktbuf.pool;
  d_frame_tax : bool;
  mutable d_listener : (Bytestruct.t -> unit) option;
  mutable d_tx_frames : int;
  mutable d_rx_frames : int;
  mutable d_rx_dropped : int;
  mutable d_capture : Netsim.Capture.t option;
}

type t = Pv of pv | Direct of direct

let gnttab t = t.hv.Xensim.Hypervisor.gnttab
let evtchn t = t.hv.Xensim.Hypervisor.evtchn

(* ---- backend ---- *)

let backend_handle_tx t () =
  let n =
    Xensim.Ring.Back.consume_requests t.tx_back (fun slot ->
        let id = Bytestruct.LE.get_uint16 slot 0 in
        let size = Bytestruct.LE.get_uint16 slot 2 in
        let gref = Int32.to_int (Bytestruct.LE.get_uint32 slot 4) in
        (* One evtchn kick covers a batch of slots from different flows:
           re-establish each frame's own flow around the wire send. *)
        let fl, owner =
          match Hashtbl.find_opt t.tx_pending id with
          | Some p -> (p.flow, p.owner)
          | None -> (Trace.Flow.none, None)
        in
        Trace.Flow.with_flow fl (fun () ->
            let work () =
              let page = Xensim.Gnttab.map (gnttab t) ~by:t.backend_dom.Xensim.Domain.id gref in
              let frame = Bytestruct.sub page 0 size in
              (* The mapped grant IS the guest's TX pktbuf storage: hand
                 the wire its refcount so the pool cannot recycle the
                 buffer while the frame is in flight. *)
              Netsim.Nic.send ?owner t.nic frame;
              Xensim.Gnttab.unmap (gnttab t) ~by:t.backend_dom.Xensim.Domain.id gref;
              let rsp = Xensim.Ring.Back.next_response t.tx_back in
              Bytestruct.LE.set_uint16 rsp 0 id;
              Bytestruct.LE.set_uint16 rsp 2 0 (* NETIF_RSP_OKAY *)
            in
            if Trace.Dpath.enabled () then
              Trace.Dpath.measure Trace.Dpath.Ring_slot ~vcpu_ns:backend_per_packet_ns work
            else work ()))
  in
  if n > 0 then begin
    let kick () = Xensim.Domain.charge_k t.backend_dom ~cost:(n * backend_per_packet_ns) (fun () -> ()) in
    if Trace.Prof.enabled () then Trace.Prof.with_frame "netif" kick else kick ();
    if Xensim.Ring.Back.push_responses_and_check_notify t.tx_back then
      Xensim.Evtchn.notify (evtchn t) t.tx_port_back
  end

let backend_handle_rx_credit t () =
  ignore
    (Xensim.Ring.Back.consume_requests t.rx_back (fun slot ->
         let id = Bytestruct.LE.get_uint16 slot 0 in
         let gref = Int32.to_int (Bytestruct.LE.get_uint32 slot 4) in
         Queue.add (id, gref) t.rx_avail))

let backend_deliver_frame t ~id ~gref frame =
  if Trace.enabled () then
    Hashtbl.replace t.rx_spans id
      (Trace.span ~dom:t.dom.Xensim.Domain.id ~cat:Trace.Device "netif.rx");
  let work () =
    Xensim.Gnttab.copy_to (gnttab t) ~by:t.backend_dom.Xensim.Domain.id gref ~src:frame;
    let rsp = Xensim.Ring.Back.next_response t.rx_back in
    Bytestruct.LE.set_uint16 rsp 0 id;
    Bytestruct.LE.set_uint16 rsp 2 (Bytestruct.length frame);
    let kick () = Xensim.Domain.charge_k t.backend_dom ~cost:backend_per_packet_ns (fun () -> ()) in
    if Trace.Prof.enabled () then Trace.Prof.with_frame "netif" kick else kick ();
    if Xensim.Ring.Back.push_responses_and_check_notify t.rx_back then
      Xensim.Evtchn.notify (evtchn t) t.rx_port_back
  in
  if Trace.Dpath.enabled () then
    Trace.Dpath.measure Trace.Dpath.Ring_slot ~vcpu_ns:backend_per_packet_ns work
  else work ()

let backend_handle_frame t frame =
  (* Pull any freshly-posted credit before deciding to drop. *)
  backend_handle_rx_credit t ();
  match Queue.take_opt t.rx_avail with
  | None ->
    t.rx_dropped <- t.rx_dropped + 1;
    if Trace.Flight.enabled () then
      Trace.Flight.note ~dom:t.dom.Xensim.Domain.id ~cat:Trace.Device "netif.rx_drop"
  | Some (id, gref) ->
    if Trace.enabled () then begin
      (* Every frame entering a backend begins a fresh causal flow; the
         flow then rides the scheduler ([Engine.Sim.at]) through evtchn
         delivery, the guest stack, the request handler and back out the
         TX path — until the next hop's backend RX starts the next one. *)
      let fl = Trace.Flow.start ~dom:t.dom.Xensim.Domain.id () in
      Hashtbl.replace t.rx_flows id fl;
      Trace.Flow.with_flow fl (fun () -> backend_deliver_frame t ~id ~gref frame)
    end
    else backend_deliver_frame t ~id ~gref frame

(* ---- frontend ---- *)

let post_rx_buffer t =
  (* Credit is a promise of a page, not a page: the grant materialises
     the buffer only when the backend actually copies a frame into it.
     A vif posts ~511 slots but a storm appliance receives a handful of
     frames, so eager buffers would pin ~2 MiB per vif. *)
  let page = lazy (Pktbuf.alloc t.pool) in
  let gref =
    Xensim.Gnttab.grant_access_lazy (gnttab t) ~dom:t.dom.Xensim.Domain.id
      ~peer:t.backend_dom.Xensim.Domain.id ~writable:true (fun () ->
        Pktbuf.storage (Lazy.force page))
  in
  let id = t.next_rx_id in
  t.next_rx_id <- (t.next_rx_id + 1) land 0xffff;
  Hashtbl.replace t.rx_posted id (gref, page);
  Trace.gauge_add g_rx_posted 1;
  let slot = Xensim.Ring.Front.next_request t.rx_front in
  Bytestruct.LE.set_uint16 slot 0 id;
  Bytestruct.LE.set_uint32 slot 4 (Int32.of_int gref)

let frontend_handle_tx_responses t () =
  ignore
    (Xensim.Ring.Front.consume_responses t.tx_front (fun slot ->
         let id = Bytestruct.LE.get_uint16 slot 0 in
         match Hashtbl.find_opt t.tx_pending id with
         | None -> ()
         | Some { gref; waker; span; flow; owner } ->
           Hashtbl.remove t.tx_pending id;
           Trace.gauge_add g_tx_inflight (-1);
           Xensim.Gnttab.end_access (gnttab t) gref;
           (* Driver's TX reference: the wire holds its own if the frame
              is still in flight, so this release is what lets a
              delivered frame's buffer return to the pool. *)
           (match owner with Some pb -> Pktbuf.release pb | None -> ());
           Trace.Flow.with_flow flow (fun () ->
               Trace.finish span;
               if Mthread.Promise.wakener_pending waker then Mthread.Promise.wakeup waker ())));
  (* Ring space freed: wake writers blocked on a full ring. *)
  let rec wake () =
    if Xensim.Ring.Front.free_requests t.tx_front > 0 then
      match Queue.take_opt t.tx_waiters with
      | Some u when Mthread.Promise.wakener_pending u ->
        Mthread.Promise.wakeup u ();
        wake ()
      | Some _ -> wake ()
      | None -> ()
  in
  wake ()

let frontend_handle_rx_responses t () =
  let arrived = ref [] in
  let n =
    Xensim.Ring.Front.consume_responses t.rx_front (fun slot ->
        let id = Bytestruct.LE.get_uint16 slot 0 in
        let size = Bytestruct.LE.get_uint16 slot 2 in
        match Hashtbl.find_opt t.rx_posted id with
        | None -> ()
        | Some (gref, page) ->
          Hashtbl.remove t.rx_posted id;
          Trace.gauge_add g_rx_posted (-1);
          Xensim.Gnttab.end_access (gnttab t) gref;
          (* a response means the backend copied into it: materialised *)
          arrived := (id, Lazy.force page, size) :: !arrived)
  in
  if n > 0 then begin
    let plat = t.dom.Xensim.Domain.platform in
    List.iter
      (fun (id, page, size) ->
        t.rx_frames <- t.rx_frames + 1;
        let cost = Platform.rx_cost plat ~bytes_len:size in
        (* Deliver once the vCPU has done the receive-path work; charge_k
           keeps per-frame ordering (sequential reservations on one vCPU). *)
        let deliver () =
          (* The evtchn kick that scheduled us carries only the flow of
             the frame that raised it; a batched ring holds frames from
             many flows, so re-establish this slot's own. *)
          let fl =
            match Hashtbl.find_opt t.rx_flows id with
            | Some fl ->
              Hashtbl.remove t.rx_flows id;
              fl
            | None -> Trace.Flow.none
          in
          Trace.Flow.with_flow fl (fun () ->
              (match Hashtbl.find_opt t.rx_spans id with
              | Some span ->
                Hashtbl.remove t.rx_spans id;
                Trace.finish span
              | None -> ());
              (* Zero-copy handoff: the listener gets a view straight
                 over the granted buffer, with the pktbuf ambient so any
                 layer that defers work can retain instead of copying.
                 Releasing the driver's reference afterwards returns the
                 buffer to the pool only if nobody retained. *)
              (match t.capture with
              | None -> ()
              | Some c ->
                Netsim.Capture.record ~owner:page c ~dir:Netsim.Rx
                  ~link:(Netsim.Nic.id t.nic)
                  ~time_ns:(Engine.Sim.now t.hv.Xensim.Hypervisor.sim)
                  (Pktbuf.view page ~off:0 ~len:size));
              (match t.listener with
              | Some f -> Pktbuf.with_current page (fun () -> f (Pktbuf.view page ~off:0 ~len:size))
              | None -> ());
              Pktbuf.release page;
              (* Replace the consumed credit. *)
              post_rx_buffer t;
              if Xensim.Ring.Front.push_requests_and_check_notify t.rx_front then
                Xensim.Evtchn.notify (evtchn t) t.rx_port_front)
        in
        let deliver () =
          if Trace.Dpath.enabled () then
            Trace.Dpath.measure Trace.Dpath.Netfront ~vcpu_ns:cost deliver
          else deliver ()
        in
        (* Charge under the [netif] frame so the rx work — and everything
           the listener defers — is attributed to the driver stack. *)
        if Trace.Prof.enabled () then
          Trace.Prof.with_frame "netif" (fun () -> Xensim.Domain.charge_k t.dom ~cost deliver)
        else Xensim.Domain.charge_k t.dom ~cost deliver)
      (List.rev !arrived)
  end

let connect hv ~dom ~backend_dom ~nic ?(rx_slots = 512) () =
  (* Multi-page rings (as blkif's multi-page ring extension): 16 KiB gives
     512 receive slots, enough burst absorption for several full TCP
     windows before the backend must drop. *)
  let make_ring () =
    let page = Bytestruct.create 16384 in
    let sring = Xensim.Ring.Sring.init page ~slot_bytes in
    (Xensim.Ring.Front.init sring, Xensim.Ring.Back.init (Xensim.Ring.Sring.attach page ~slot_bytes))
  in
  let tx_front, tx_back = make_ring () in
  let rx_front, rx_back = make_ring () in
  let ev = hv.Xensim.Hypervisor.evtchn in
  let alloc_pair () =
    let back_port = Xensim.Evtchn.alloc_unbound ev ~owner:backend_dom.Xensim.Domain.id in
    let front_port =
      Xensim.Evtchn.bind_interdomain ev ~local:dom.Xensim.Domain.id ~remote_port:back_port
    in
    (front_port, back_port)
  in
  let tx_port_front, tx_port_back = alloc_pair () in
  let rx_port_front, rx_port_back = alloc_pair () in
  let t =
    {
      hv;
      dom;
      backend_dom;
      nic;
      (* No pre-allocation: credit posts lazy grants, so buffers exist
         only for frames actually in flight (pool grows on demand and
         recycles). An eager [rx_slots]-buffer pool would pin ~1 MiB per
         vif whether or not a single frame ever arrives. *)
      pool = Pktbuf.create_pool ~name:(Printf.sprintf "netif.dom%d" dom.Xensim.Domain.id) ();
      tx_front;
      tx_back;
      rx_front;
      rx_back;
      tx_port_front;
      tx_port_back;
      rx_port_front;
      rx_port_back;
      tx_pending = Hashtbl.create 64;
      rx_posted = Hashtbl.create 64;
      rx_spans = Hashtbl.create 64;
      rx_flows = Hashtbl.create 64;
      rx_avail = Queue.create ();
      tx_waiters = Queue.create ();
      listener = None;
      next_tx_id = 0;
      next_rx_id = 0;
      tx_frames = 0;
      rx_frames = 0;
      rx_dropped = 0;
      tx_unflushed = 0;
      tx_flush_pending = false;
      closed = false;
      capture = None;
    }
  in
  Xensim.Evtchn.set_handler ev tx_port_back (fun () -> backend_handle_tx t ());
  Xensim.Evtchn.set_handler ev tx_port_front (fun () -> frontend_handle_tx_responses t ());
  Xensim.Evtchn.set_handler ev rx_port_back (fun () -> backend_handle_rx_credit t ());
  Xensim.Evtchn.set_handler ev rx_port_front (fun () -> frontend_handle_rx_responses t ());
  Netsim.Nic.set_rx nic (fun frame -> backend_handle_frame t frame);
  (* Seed receive credit; a 16 kB ring with 16-byte slots holds 512. *)
  let slots = min rx_slots 511 in
  for _ = 1 to slots do
    post_rx_buffer t
  done;
  if Xensim.Ring.Front.push_requests_and_check_notify t.rx_front then
    Xensim.Evtchn.notify ev t.rx_port_front;
  (* Ensure the backend sees the initial credit even without a notify edge. *)
  backend_handle_rx_credit t ();
  if Trace.Metrics.enabled () then begin
    let id = dom.Xensim.Domain.id in
    let regc name read = Trace.Metrics.register_read ~dom:id ~kind:Trace.Metrics.Counter name read in
    let regg name read = Trace.Metrics.register_read ~dom:id ~kind:Trace.Metrics.Gauge name read in
    regc "netif_tx_frames" (fun () -> t.tx_frames);
    regc "netif_rx_frames" (fun () -> t.rx_frames);
    regc "netif_rx_dropped" (fun () -> t.rx_dropped);
    regg "netif_tx_inflight" (fun () -> Hashtbl.length t.tx_pending);
    regg "netif_rx_posted" (fun () -> Hashtbl.length t.rx_posted)
  end;
  Pv t

(* ---- direct attachment ---- *)

let direct_rx_cost d size =
  let plat = d.d_dom.Xensim.Domain.platform in
  if d.d_frame_tax then Platform.rx_cost plat ~bytes_len:size + plat.Platform.syscall_ns
  else plat.Platform.per_packet_ns

let direct_tx_cost d len =
  let plat = d.d_dom.Xensim.Domain.platform in
  if d.d_frame_tax then Platform.tx_cost plat ~bytes_len:len + plat.Platform.syscall_ns
  else plat.Platform.per_packet_ns

let direct_handle_frame d frame =
  match d.d_listener with
  | None -> d.d_rx_dropped <- d.d_rx_dropped + 1
  | Some _ ->
    let size = Bytestruct.length frame in
    (* The wire buffer is only valid during this callback. When it is
       pktbuf-backed (PV peer on the same bridge), a reference keeps it
       alive across the deferred vCPU charge — the copy tax this path
       models is in the cost model, not a real blit. Raw frames still
       get copied into a pool buffer. *)
    let view, holder =
      match Pktbuf.retain_current () with
      | Some pb -> (frame, pb)
      | None ->
        let pb = Pktbuf.alloc d.d_pool in
        Bytestruct.blit frame 0 (Pktbuf.storage pb) 0 size;
        (Pktbuf.view pb ~off:0 ~len:size, pb)
    in
    let deliver () =
      d.d_rx_frames <- d.d_rx_frames + 1;
      let span =
        if Trace.enabled () then
          Some (Trace.span ~dom:d.d_dom.Xensim.Domain.id ~cat:Trace.Device "netif.rx")
        else None
      in
      Xensim.Domain.charge_k d.d_dom ~cost:(direct_rx_cost d size) (fun () ->
          (match span with Some sp -> Trace.finish sp | None -> ());
          (match d.d_capture with
          | None -> ()
          | Some c ->
            Netsim.Capture.record ~owner:holder c ~dir:Netsim.Rx
              ~link:(Netsim.Nic.id d.d_nic)
              ~time_ns:(Engine.Sim.now d.d_dom.Xensim.Domain.sim)
              view);
          (match d.d_listener with
          | Some f -> Pktbuf.with_current holder (fun () -> f view)
          | None -> ());
          Pktbuf.release holder)
    in
    if Trace.enabled () then
      (* As on the PV path: every frame entering from the wire begins a
         fresh causal flow that then rides the scheduler through the
         stack and the application. *)
      Trace.Flow.with_flow (Trace.Flow.start ~dom:d.d_dom.Xensim.Domain.id ()) deliver
    else deliver ()

let connect_direct ~dom ~nic ?(frame_tax = false) () =
  let d =
    {
      d_dom = dom;
      d_nic = nic;
      d_pool = Pktbuf.create_pool ~name:(Printf.sprintf "netif.dom%d" dom.Xensim.Domain.id) ();
      d_frame_tax = frame_tax;
      d_listener = None;
      d_tx_frames = 0;
      d_rx_frames = 0;
      d_rx_dropped = 0;
      d_capture = None;
    }
  in
  Netsim.Nic.set_rx nic (fun frame -> direct_handle_frame d frame);
  if Trace.Metrics.enabled () then begin
    let id = dom.Xensim.Domain.id in
    let regc name read = Trace.Metrics.register_read ~dom:id ~kind:Trace.Metrics.Counter name read in
    regc "netif_tx_frames" (fun () -> d.d_tx_frames);
    regc "netif_rx_frames" (fun () -> d.d_rx_frames);
    regc "netif_rx_dropped" (fun () -> d.d_rx_dropped)
  end;
  Direct d

let direct_write ?owner d frame =
  let open Mthread.Promise in
  let len = Bytestruct.length frame in
  if len > mtu_bytes + 14 then invalid_arg "Netif.write: frame exceeds MTU";
  d.d_tx_frames <- d.d_tx_frames + 1;
  (match d.d_capture with
  | None -> ()
  | Some c ->
    Netsim.Capture.record ?owner c ~dir:Netsim.Tx
      ~link:(Netsim.Nic.id d.d_nic)
      ~time_ns:(Engine.Sim.now d.d_dom.Xensim.Domain.sim)
      frame);
  let span = Trace.span ~dom:d.d_dom.Xensim.Domain.id ~cat:Trace.Device "netif.tx" in
  bind
    (Xensim.Domain.charge d.d_dom ~cost:(direct_tx_cost d len))
    (fun () ->
      (* The wire retains per scheduled delivery, so the write's own
         reference (transferred by the caller) can drop right away. *)
      Netsim.Nic.send ?owner d.d_nic frame;
      (match owner with Some pb -> Pktbuf.release pb | None -> ());
      Trace.finish span;
      return ())

let mac = function Pv t -> Netsim.Nic.mac t.nic | Direct d -> Netsim.Nic.mac d.d_nic
let nic = function Pv t -> t.nic | Direct d -> d.d_nic
let mtu _ = mtu_bytes
let pool = function Pv t -> t.pool | Direct d -> d.d_pool

let tx_doorbells () = Trace.counter_value c_doorbell

(* Push whatever requests accumulated since the last doorbell and ring
   it once — the flush side of TSO-style batching. *)
let pv_tx_flush t =
  t.tx_flush_pending <- false;
  if (not t.closed) && t.tx_unflushed > 0 then begin
    t.tx_unflushed <- 0;
    if Xensim.Ring.Front.push_requests_and_check_notify t.tx_front then begin
      Trace.incr c_doorbell;
      Xensim.Evtchn.notify (evtchn t) t.tx_port_front
    end
  end

let rec pv_write ?owner t frame =
  let open Mthread.Promise in
  let len = Bytestruct.length frame in
  if len > mtu_bytes + 14 then invalid_arg "Netif.write: frame exceeds MTU";
  if Xensim.Ring.Front.free_requests t.tx_front = 0 then begin
    let p, u = wait () in
    Queue.add u t.tx_waiters;
    bind p (fun () -> pv_write ?owner t frame)
  end
  else begin
    let gref =
      Xensim.Gnttab.grant_access (gnttab t) ~dom:t.dom.Xensim.Domain.id
        ~peer:t.backend_dom.Xensim.Domain.id ~writable:false frame
    in
    let id = t.next_tx_id in
    t.next_tx_id <- (t.next_tx_id + 1) land 0xffff;
    let done_p, waker = Mthread.Promise.wait () in
    let span = Trace.span ~dom:t.dom.Xensim.Domain.id ~cat:Trace.Device "netif.tx" in
    let flow = if Trace.enabled () then Trace.Flow.current () else Trace.Flow.none in
    Hashtbl.replace t.tx_pending id { gref; waker; span; flow; owner };
    Trace.gauge_add g_tx_inflight 1;
    let slot = Xensim.Ring.Front.next_request t.tx_front in
    Bytestruct.LE.set_uint16 slot 0 id;
    Bytestruct.LE.set_uint16 slot 2 len;
    Bytestruct.LE.set_uint32 slot 4 (Int32.of_int gref);
    t.tx_frames <- t.tx_frames + 1;
    (match t.capture with
    | None -> ()
    | Some c ->
      Netsim.Capture.record ?owner c ~dir:Netsim.Tx
        ~link:(Netsim.Nic.id t.nic)
        ~time_ns:(Engine.Sim.now t.hv.Xensim.Hypervisor.sim)
        frame);
    (* The vCPU does the driver work before the frame reaches the ring —
       this is what makes a busy guest the throughput bottleneck. *)
    let send () =
      bind
        (Xensim.Domain.charge t.dom
           ~cost:(Platform.tx_cost t.dom.Xensim.Domain.platform ~bytes_len:len))
        (fun () ->
          if not !tx_batching then begin
            if Xensim.Ring.Front.push_requests_and_check_notify t.tx_front then begin
              Trace.incr c_doorbell;
              Xensim.Evtchn.notify (evtchn t) t.tx_port_front
            end
          end
          else begin
            t.tx_unflushed <- t.tx_unflushed + 1;
            if t.tx_unflushed >= tx_batch_max then pv_tx_flush t
            else if not t.tx_flush_pending then begin
              t.tx_flush_pending <- true;
              let sim = t.hv.Xensim.Hypervisor.sim in
              ignore
                (Engine.Sim.at sim
                   ~time:(Engine.Sim.now sim + !tx_flush_delay_ns)
                   (fun () -> pv_tx_flush t))
            end
          end;
          done_p)
    in
    if Trace.Prof.enabled () then Trace.Prof.with_frame "netif" send else send ()
  end

let write ?owner t frame =
  match t with Pv p -> pv_write ?owner p frame | Direct d -> direct_write ?owner d frame

(* Teardown, audited so nothing here scans other domains' state: close
   the event channels (which frees the port entries and the backend/
   frontend handler closures pinning this device), revoke every
   outstanding grant, and drop posted receive credit.  After this the
   whole device — rings, pool, pending tables — is garbage as soon as
   the caller lets go of [t].  TX writers still parked on a full ring
   never resume, exactly as for a destroyed domain. *)
let pv_disconnect t =
  let ev = evtchn t in
  t.closed <- true;
  Xensim.Evtchn.close ev t.tx_port_front;
  Xensim.Evtchn.close ev t.rx_port_front;
  t.listener <- None;
  t.capture <- None;
  Trace.gauge_add g_tx_inflight (-Hashtbl.length t.tx_pending);
  Hashtbl.iter
    (fun _ (p : tx_pending) ->
      Xensim.Gnttab.end_access (gnttab t) p.gref;
      match p.owner with Some pb -> Pktbuf.release pb | None -> ())
    t.tx_pending;
  Hashtbl.reset t.tx_pending;
  Trace.gauge_add g_rx_posted (-Hashtbl.length t.rx_posted);
  Hashtbl.iter
    (fun _ (gref, page) ->
      Xensim.Gnttab.end_access (gnttab t) gref;
      if Lazy.is_val page then Pktbuf.release (Lazy.force page))
    t.rx_posted;
  Hashtbl.reset t.rx_posted;
  Hashtbl.reset t.rx_spans;
  Hashtbl.reset t.rx_flows;
  Queue.clear t.rx_avail;
  Queue.clear t.tx_waiters;
  Netsim.Nic.set_rx t.nic (fun _ -> ())

let disconnect = function
  | Pv t -> pv_disconnect t
  | Direct d ->
    d.d_listener <- None;
    d.d_capture <- None;
    Netsim.Nic.set_rx d.d_nic (fun _ -> ())

let set_listener t f =
  match t with Pv p -> p.listener <- Some f | Direct d -> d.d_listener <- Some f

let set_capture t c =
  match t with Pv p -> p.capture <- c | Direct d -> d.d_capture <- c

let tx_frames = function Pv t -> t.tx_frames | Direct d -> d.d_tx_frames
let rx_frames = function Pv t -> t.rx_frames | Direct d -> d.d_rx_frames
let rx_dropped = function Pv t -> t.rx_dropped | Direct d -> d.d_rx_dropped
