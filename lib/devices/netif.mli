(** The Xen split network driver (paper §3.4): a frontend in the guest and
    a backend attached to a simulated NIC, connected by two shared rings
    (TX, RX), grant references for payload pages, and event channels for
    notifications.

    Transmit is zero-copy from the guest's perspective: the frame buffer
    (an I/O page view) is granted to the backend, which maps it and puts it
    on the wire; the grant is revoked when the TX response returns. Receive
    pre-posts granted pages; the backend grant-copies each arriving frame
    into one (netback's GNTTABOP_copy path) and the frontend hands the
    filled view to the listener without further copying.

    A second, {e direct} attachment mode serves the POSIX developer
    targets (paper §5.4): no rings, grants or backend domain — frames go
    straight between the NIC and the guest, with the cost model carrying
    the difference. With [frame_tax] the domain pays the full userspace
    per-frame path plus a syscall (Posix_direct's tuntap read/write);
    without it only the host kernel's per-packet work is charged (the
    in-kernel stack beneath Hostnet's sockets). *)

type t

(** [connect hv ~dom ~backend_dom ~nic ()] wires a frontend in [dom] to a
    backend in [backend_dom] driving [nic]. [rx_slots] bounds posted
    receive buffers (default 128). *)
val connect :
  Xensim.Hypervisor.t ->
  dom:Xensim.Domain.t ->
  backend_dom:Xensim.Domain.t ->
  nic:Netsim.Nic.t ->
  ?rx_slots:int ->
  unit ->
  t

(** [connect_direct ~dom ~nic ()] attaches [dom] to [nic] without the PV
    split-driver machinery — the host-kernel device path of the POSIX
    targets. [frame_tax] charges the userspace per-frame copy + syscall
    tax (tuntap); off by default. *)
val connect_direct : dom:Xensim.Domain.t -> nic:Netsim.Nic.t -> ?frame_tax:bool -> unit -> t

val mac : t -> string

(** The underlying simulated NIC (e.g. for per-port fault injection at
    the bridge). *)
val nic : t -> Netsim.Nic.t

val mtu : t -> int

(** The frontend's packet-buffer pool; the network stack allocates
    transmit buffers here. *)
val pool : t -> Pktbuf.pool

(** [write t frame] transmits, blocking while the TX ring is full. The
    promise resolves once the request is on the ring (the driver
    pipelines; grant cleanup happens on the TX response). With [?owner]
    the caller transfers its reference on the frame's backing pktbuf:
    the driver holds it until the TX response (PV) or the wire send
    (direct), and the wire itself retains per in-flight delivery — so
    the buffer returns to the pool only after the last consumer. *)
val write : ?owner:Pktbuf.t -> t -> Bytestruct.t -> unit Mthread.Promise.t

(** Frames delivered to the listener are views over pool buffers
    released after the listener returns. The buffer is the ambient
    {!Pktbuf.current} for the duration of the callback: a layer that
    defers work over the payload calls [Pktbuf.retain_current] to keep
    the view valid instead of copying. *)
val set_listener : t -> (Bytestruct.t -> unit) -> unit

(** [set_capture t (Some c)] installs a per-vif wire capture: every frame
    this device transmits ([Tx], as the request reaches the ring) or
    delivers to its listener ([Rx]) is offered to [c] — the view from
    one guest's device, as opposed to a bridge-wide
    {!Netsim.Capture.attach_bridge}. Frames are recorded with this vif's
    {!Netsim.Nic.id} as the link and pass the capture's filter as usual.
    [None] (and {!disconnect}) detaches; the cost when unset is one null
    check per frame. *)
val set_capture : t -> Netsim.Capture.t option -> unit

(** {1 TSO-style doorbell coalescing}

    When enabled, TX requests accumulate on the ring and one
    event-channel notify covers the whole batch (flushed after
    [flush_delay_ns], default 10 µs, or 32 frames — whichever first).
    Off by default: the per-frame doorbell keeps wire timing, and so
    every figure, bit-identical. *)

val set_tx_batching : ?flush_delay_ns:int -> bool -> unit

(** Process-wide count of TX doorbells rung (the [netif.tx_doorbells]
    trace counter) — how batching is observed in tests and benches. *)
val tx_doorbells : unit -> int

(** [disconnect t] tears the device down: closes its event channels
    (freeing the port entries whose handler closures pin the device),
    revokes outstanding TX grants and posted receive credit, and stops
    accepting frames from the wire. Part of the domain-teardown audit:
    without it every destroyed domain's rings and page pool stay
    reachable from the hypervisor's port table for ever. Writers blocked
    on a full TX ring never resume, as for a destroyed domain. *)
val disconnect : t -> unit

val tx_frames : t -> int
val rx_frames : t -> int

(** Frames dropped because no receive buffer was posted. *)
val rx_dropped : t -> int
