(* Ring slot layout (32 bytes, little-endian):
     request:  op u8@0 (0 read, 1 write), id u16@2, sector u64@8,
               count u16@16, gref u32@20
     response: status u8@0 (0 ok, 1 error), id u16@2 *)

let slot_bytes = 32
let backend_per_request_ns = 2_000

(* Aggregate in-flight block requests across all blkifs in the process. *)
let g_inflight = Trace.gauge "blkif.inflight"

type pending = {
  gref : Xensim.Gnttab.grant_ref;
  buffer : Bytestruct.t;
  waker : (Bytestruct.t, exn) result Mthread.Promise.u;
  span : Trace.span;  (* request submit -> response *)
}

type t = {
  hv : Xensim.Hypervisor.t;
  dom : Xensim.Domain.t;
  backend_dom : Xensim.Domain.t;
  disk : Blockdev.Disk.t;
  front : Xensim.Ring.Front.t;
  back : Xensim.Ring.Back.t;
  port_front : Xensim.Evtchn.port;
  port_back : Xensim.Evtchn.port;
  pending : (int, pending) Hashtbl.t;
  ring_space : Mthread.Msem.t;
  mutable next_id : int;
  mutable requests : int;
}

let gnttab t = t.hv.Xensim.Hypervisor.gnttab
let evtchn t = t.hv.Xensim.Hypervisor.evtchn

let backend_handle t () =
  let work = ref [] in
  ignore
    (Xensim.Ring.Back.consume_requests t.back (fun slot ->
         let op = Bytestruct.get_uint8 slot 0 in
         let id = Bytestruct.LE.get_uint16 slot 2 in
         let sector = Int64.to_int (Bytestruct.LE.get_uint64 slot 8) in
         let count = Bytestruct.LE.get_uint16 slot 16 in
         let gref = Int32.to_int (Bytestruct.LE.get_uint32 slot 20) in
         work := (op, id, sector, count, gref) :: !work));
  let respond id status =
    let rsp = Xensim.Ring.Back.next_response t.back in
    Bytestruct.set_uint8 rsp 0 status;
    Bytestruct.LE.set_uint16 rsp 2 id;
    if Xensim.Ring.Back.push_responses_and_check_notify t.back then
      Xensim.Evtchn.notify (evtchn t) t.port_back
  in
  List.iter
    (fun (op, id, sector, count, gref) ->
      Xensim.Domain.charge_k t.backend_dom ~cost:backend_per_request_ns (fun () -> ());
      Mthread.Promise.async (fun () ->
          let open Mthread.Promise in
          if op = 0 then
            catch
              (fun () ->
                bind (Blockdev.Disk.read t.disk ~sector ~count) (fun data ->
                    Xensim.Gnttab.copy_to (gnttab t) ~by:t.backend_dom.Xensim.Domain.id gref
                      ~src:data;
                    respond id 0;
                    return ()))
              (fun _ ->
                respond id 1;
                return ())
          else
            catch
              (fun () ->
                let data = Xensim.Gnttab.map (gnttab t) ~by:t.backend_dom.Xensim.Domain.id gref in
                bind (Blockdev.Disk.write t.disk ~sector data) (fun () ->
                    Xensim.Gnttab.unmap (gnttab t) ~by:t.backend_dom.Xensim.Domain.id gref;
                    respond id 0;
                    return ()))
              (fun _ ->
                Xensim.Gnttab.unmap (gnttab t) ~by:t.backend_dom.Xensim.Domain.id gref;
                respond id 1;
                return ())))
    (List.rev !work)

exception Block_error

let frontend_handle t () =
  ignore
    (Xensim.Ring.Front.consume_responses t.front (fun slot ->
         let status = Bytestruct.get_uint8 slot 0 in
         let id = Bytestruct.LE.get_uint16 slot 2 in
         match Hashtbl.find_opt t.pending id with
         | None -> ()
         | Some p ->
           Hashtbl.remove t.pending id;
           Trace.gauge_add g_inflight (-1);
           Xensim.Gnttab.end_access (gnttab t) p.gref;
           Trace.finish p.span;
           Mthread.Msem.release t.ring_space;
           if status = 0 then Mthread.Promise.wakeup p.waker (Ok p.buffer)
           else Mthread.Promise.wakeup p.waker (Error Block_error)))

let connect hv ~dom ~backend_dom ~disk () =
  let page = Bytestruct.create 4096 in
  let sring = Xensim.Ring.Sring.init page ~slot_bytes in
  let front = Xensim.Ring.Front.init sring in
  let back = Xensim.Ring.Back.init (Xensim.Ring.Sring.attach page ~slot_bytes) in
  let ev = hv.Xensim.Hypervisor.evtchn in
  let port_back = Xensim.Evtchn.alloc_unbound ev ~owner:backend_dom.Xensim.Domain.id in
  let port_front =
    Xensim.Evtchn.bind_interdomain ev ~local:dom.Xensim.Domain.id ~remote_port:port_back
  in
  let t =
    {
      hv;
      dom;
      backend_dom;
      disk;
      front;
      back;
      port_front;
      port_back;
      pending = Hashtbl.create 64;
      ring_space = Mthread.Msem.create 64;
      next_id = 0;
      requests = 0;
    }
  in
  Xensim.Evtchn.set_handler ev port_back (fun () -> backend_handle t ());
  Xensim.Evtchn.set_handler ev port_front (fun () -> frontend_handle t ());
  if Trace.Metrics.enabled () then begin
    let id = dom.Xensim.Domain.id in
    Trace.Metrics.register_read ~dom:id ~kind:Trace.Metrics.Counter "blkif_requests" (fun () ->
        t.requests);
    Trace.Metrics.register_read ~dom:id ~kind:Trace.Metrics.Gauge "blkif_inflight" (fun () ->
        Hashtbl.length t.pending)
  end;
  t

let sector_bytes t = Blockdev.Disk.sector_bytes t.disk
let sectors t = Blockdev.Disk.sectors t.disk
let requests_issued t = t.requests

let submit t ~op ~sector ~count ~buffer =
  let open Mthread.Promise in
  bind (Mthread.Msem.acquire t.ring_space) (fun () ->
      (* The permit is returned by [frontend_handle] when the response
         frees the ring slot. *)
      let writable = op = `Read in
      let gref =
        Xensim.Gnttab.grant_access (gnttab t) ~dom:t.dom.Xensim.Domain.id
          ~peer:t.backend_dom.Xensim.Domain.id ~writable buffer
      in
      let id = t.next_id in
      t.next_id <- (t.next_id + 1) land 0xffff;
      let p, waker = wait () in
      let span =
        Trace.span ~dom:t.dom.Xensim.Domain.id ~cat:Trace.Device
          (if op = `Read then "blkif.read" else "blkif.write")
      in
      Hashtbl.replace t.pending id { gref; buffer; waker; span };
      Trace.gauge_add g_inflight 1;
      let slot = Xensim.Ring.Front.next_request t.front in
      Bytestruct.set_uint8 slot 0 (if op = `Read then 0 else 1);
      Bytestruct.LE.set_uint16 slot 2 id;
      Bytestruct.LE.set_uint64 slot 8 (Int64.of_int sector);
      Bytestruct.LE.set_uint16 slot 16 count;
      Bytestruct.LE.set_uint32 slot 20 (Int32.of_int gref);
      t.requests <- t.requests + 1;
      if Xensim.Ring.Front.push_requests_and_check_notify t.front then
        Xensim.Evtchn.notify (evtchn t) t.port_front;
      bind
        (Xensim.Domain.charge t.dom ~cost:t.dom.Xensim.Domain.platform.Platform.per_packet_ns)
        (fun () ->
          bind p (function Ok data -> return data | Error e -> fail e)))

let read t ~sector ~count =
  if count <= 0 || count > 0xffff then invalid_arg "Blkif.read: bad count";
  let buffer = Bytestruct.create (count * sector_bytes t) in
  submit t ~op:`Read ~sector ~count ~buffer

let write t ~sector data =
  let open Mthread.Promise in
  let len = Bytestruct.length data in
  if len mod sector_bytes t <> 0 then invalid_arg "Blkif.write: partial sector";
  let count = len / sector_bytes t in
  bind (submit t ~op:`Write ~sector ~count ~buffer:data) (fun _ -> return ())
