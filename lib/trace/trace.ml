type category =
  | Sched
  | Boot
  | Hypercall
  | Evtchn
  | Gnttab
  | Ring
  | Device
  | Net
  | User of string

let category_name = function
  | Sched -> "sched"
  | Boot -> "boot"
  | Hypercall -> "hypercall"
  | Evtchn -> "evtchn"
  | Gnttab -> "gnttab"
  | Ring -> "ring"
  | Device -> "device"
  | Net -> "net"
  | User s -> s

type value = Int of int | Float of float | String of string | Bool of bool
type payload = (string * value) list
type phase = Instant | Begin | End

type event = {
  seq : int;
  time : int;
  dom : int;
  cat : category;
  name : string;
  phase : phase;
  depth : int;
  flow : int;
  payload : payload;
}

let default_capacity = 65536

(* ---- log-linear histograms ---- *)

module Hist = struct
  (* HDR-style log-linear buckets: values below [linear] get unit-width
     buckets; each further octave [2^k, 2^(k+1)) is split into [half]
     sub-buckets of width 2^(k - sub_bits + 1). Relative quantization
     error is bounded by 1/(2*half) ~ 0.8%, independent of magnitude. *)
  let sub_bits = 7
  let linear = 1 lsl sub_bits
  let half = linear / 2

  type t = {
    mutable counts : int array;
    mutable h_count : int;
    mutable h_total : int;
    mutable h_min : int;
    mutable h_max : int;
  }

  let create () = { counts = [||]; h_count = 0; h_total = 0; h_min = max_int; h_max = 0 }

  let msb v =
    let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
    go v 0

  let bucket_of v =
    if v < linear then v
    else
      let k = msb v in
      let shift = k - sub_bits + 1 in
      linear + ((k - sub_bits) * half) + ((v lsr shift) - half)

  (* Inclusive bounds of bucket [i]. *)
  let bucket_lo i =
    if i < linear then i
    else
      let oct = (i - linear) / half and sub = (i - linear) mod half in
      (half + sub) lsl (oct + 1)

  let bucket_width i = if i < linear then 1 else 1 lsl (((i - linear) / half) + 1)

  let record h v =
    let v = max 0 v in
    let idx = bucket_of v in
    if idx >= Array.length h.counts then begin
      let cap = max 64 (Array.length h.counts) in
      let cap = ref cap in
      while idx >= !cap do
        cap := 2 * !cap
      done;
      let bigger = Array.make !cap 0 in
      Array.blit h.counts 0 bigger 0 (Array.length h.counts);
      h.counts <- bigger
    end;
    h.counts.(idx) <- h.counts.(idx) + 1;
    h.h_count <- h.h_count + 1;
    h.h_total <- h.h_total + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v

  let count h = h.h_count
  let total h = h.h_total
  let min_ns h = if h.h_count = 0 then 0 else h.h_min
  let max_ns h = if h.h_count = 0 then 0 else h.h_max
  let mean h = if h.h_count = 0 then 0. else float_of_int h.h_total /. float_of_int h.h_count

  let merge a b =
    let m = create () in
    let cap = max (Array.length a.counts) (Array.length b.counts) in
    m.counts <- Array.make cap 0;
    Array.iteri (fun i n -> m.counts.(i) <- m.counts.(i) + n) a.counts;
    Array.iteri (fun i n -> m.counts.(i) <- m.counts.(i) + n) b.counts;
    m.h_count <- a.h_count + b.h_count;
    m.h_total <- a.h_total + b.h_total;
    m.h_min <- min a.h_min b.h_min;
    m.h_max <- max a.h_max b.h_max;
    m

  let percentile h p =
    if h.h_count = 0 then 0.
    else if p <= 0. then float_of_int h.h_min
    else if p >= 100. then float_of_int h.h_max
    else begin
      let rank = p /. 100. *. float_of_int h.h_count in
      let rank = int_of_float (ceil rank) in
      let rank = max 1 (min h.h_count rank) in
      let cum = ref 0 and res = ref (float_of_int h.h_max) and found = ref false in
      let n = Array.length h.counts in
      let i = ref 0 in
      while (not !found) && !i < n do
        let c = h.counts.(!i) in
        if c > 0 then begin
          cum := !cum + c;
          if !cum >= rank then begin
            let lo = bucket_lo !i and w = bucket_width !i in
            let mid = float_of_int lo +. (float_of_int (w - 1) /. 2.) in
            res := Float.min (Float.max mid (float_of_int h.h_min)) (float_of_int h.h_max);
            found := true
          end
        end;
        incr i
      done;
      !res
    end

  let buckets h =
    let acc = ref [] in
    Array.iteri
      (fun i c -> if c > 0 then acc := (bucket_lo i, bucket_lo i + bucket_width i - 1, c) :: !acc)
      h.counts;
    List.rev !acc
end

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : int }

type span_acc = {
  sa_name : string;
  sa_cat : category;
  sa_dom : int;
  sa_hist : Hist.t;
}

type span_stat = {
  span_name : string;
  span_cat : category;
  span_dom : int;
  span_count : int;
  span_total_ns : int;
  span_min_ns : int;
  span_max_ns : int;
  span_hist : Hist.t;
}

type span = {
  sp_live : bool;
  sp_name : string;
  sp_cat : category;
  sp_dom : int;
  sp_start : int;
  mutable sp_closed : bool;
}

type state = {
  mutable on : bool;
  mutable ring : event array;
  mutable head : int;  (* next write position *)
  mutable length : int;
  mutable dropped : int;
  mutable seq : int;
  mutable depth : int;
  mutable clock : unit -> int;
  mutable clock_base : int;
  mutable last_time : int;
  mutable cur_flow : int;
  mutable next_flow : int;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  spans : (string * int, span_acc) Hashtbl.t;
}

let dummy_event =
  {
    seq = 0;
    time = 0;
    dom = -1;
    cat = Sched;
    name = "";
    phase = Instant;
    depth = 0;
    flow = -1;
    payload = [];
  }

let t =
  {
    on = false;
    ring = [||];
    head = 0;
    length = 0;
    dropped = 0;
    seq = 0;
    depth = 0;
    clock = (fun () -> 0);
    clock_base = 0;
    last_time = 0;
    cur_flow = -1;
    next_flow = 0;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    spans = Hashtbl.create 32;
  }

let enabled () = t.on

let enable ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.enable: capacity must be positive";
  if Array.length t.ring <> capacity then begin
    t.ring <- Array.make capacity dummy_event;
    t.head <- 0;
    t.length <- 0;
    t.dropped <- 0
  end;
  t.on <- true

let disable () = t.on <- false

let reset () =
  Array.fill t.ring 0 (Array.length t.ring) dummy_event;
  t.head <- 0;
  t.length <- 0;
  t.dropped <- 0;
  t.seq <- 0;
  t.depth <- 0;
  t.last_time <- 0;
  t.clock_base <- 0;
  t.cur_flow <- -1;
  t.next_flow <- 0;
  Hashtbl.iter (fun _ c -> c.c_value <- 0) t.counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0) t.gauges;
  Hashtbl.reset t.spans

let set_clock f =
  (* Re-base so a fresh simulator (starting at t=0) continues the trace
     timeline monotonically instead of jumping backwards. *)
  t.clock_base <- t.last_time;
  t.clock <- f

let now () =
  let time = t.clock_base + t.clock () in
  if time > t.last_time then t.last_time <- time;
  t.last_time

let push ev =
  let cap = Array.length t.ring in
  if cap = 0 then begin
    t.ring <- Array.make default_capacity dummy_event;
    t.head <- 0;
    t.length <- 0
  end;
  let cap = Array.length t.ring in
  t.ring.(t.head) <- ev;
  t.head <- (t.head + 1) mod cap;
  if t.length < cap then t.length <- t.length + 1 else t.dropped <- t.dropped + 1

let record ?(dom = -1) ?(payload = []) ~cat ~phase name =
  let seq = t.seq in
  t.seq <- seq + 1;
  push { seq; time = now (); dom; cat; name; phase; depth = t.depth; flow = t.cur_flow; payload }

let emit ?dom ?payload ~cat name = if t.on then record ?dom ?payload ~cat ~phase:Instant name

let events () =
  let cap = Array.length t.ring in
  List.init t.length (fun i -> t.ring.((t.head - t.length + i + (2 * cap)) mod cap))

let dropped () = t.dropped

(* ---- flows ---- *)

module Flow = struct
  type id = int

  let none = -1
  let current () = t.cur_flow

  let start ?dom () =
    let id = t.next_flow in
    t.next_flow <- id + 1;
    let prev = t.cur_flow in
    t.cur_flow <- id;
    if t.on then record ?dom ~cat:Sched ~phase:Instant "flow.begin";
    t.cur_flow <- prev;
    id

  let with_flow id f =
    if id < 0 then f ()
    else begin
      let prev = t.cur_flow in
      t.cur_flow <- id;
      Fun.protect ~finally:(fun () -> t.cur_flow <- prev) f
    end

  let wrap id f =
    let prev = t.cur_flow in
    t.cur_flow <- id;
    Fun.protect ~finally:(fun () -> t.cur_flow <- prev) f
end

(* ---- counters ---- *)

let counter name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace t.counters name c;
    c

let add c n =
  if t.on && n > 0 then
    (* Saturate instead of wrapping negative on overflow. *)
    c.c_value <- (if c.c_value > max_int - n then max_int else c.c_value + n)

let incr c = add c 1
let counter_value c = c.c_value

let counters () =
  Hashtbl.fold (fun name c acc -> (name, c.c_value) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- gauges ----

   Instantaneous values (ring occupancy, queue depth, buffered bytes):
   unlike the saturating counters they move both ways, so they get
   [set]/[add] instead of [incr]. Updates are gated on the enabled flag
   like every other hot-path hook. *)

let gauge name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0 } in
    Hashtbl.replace t.gauges name g;
    g

let gauge_set g v = if t.on then g.g_value <- v
let gauge_add g d = if t.on then g.g_value <- g.g_value + d
let gauge_value g = g.g_value

let gauges () =
  Hashtbl.fold (fun name g acc -> (name, g.g_value) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- spans ---- *)

let span_acc ~cat ~dom name =
  let key = (name, dom) in
  match Hashtbl.find_opt t.spans key with
  | Some sa -> sa
  | None ->
    let sa = { sa_name = name; sa_cat = cat; sa_dom = dom; sa_hist = Hist.create () } in
    Hashtbl.replace t.spans key sa;
    sa

let span_record sa dur = Hist.record sa.sa_hist dur

let dead_span =
  { sp_live = false; sp_name = ""; sp_cat = Sched; sp_dom = -1; sp_start = 0; sp_closed = true }

let span ?(dom = -1) ?payload ~cat name =
  if not t.on then dead_span
  else begin
    record ~dom ?payload ~cat ~phase:Begin name;
    t.depth <- t.depth + 1;
    { sp_live = true; sp_name = name; sp_cat = cat; sp_dom = dom; sp_start = now (); sp_closed = false }
  end

let finish ?(payload = []) sp =
  if sp.sp_live && not sp.sp_closed then begin
    sp.sp_closed <- true;
    if t.on then begin
      let dur = max 0 (now () - sp.sp_start) in
      span_record (span_acc ~cat:sp.sp_cat ~dom:sp.sp_dom sp.sp_name) dur;
      if t.depth > 0 then t.depth <- t.depth - 1;
      record ~dom:sp.sp_dom
        ~payload:(("dur_ns", Int dur) :: payload)
        ~cat:sp.sp_cat ~phase:End sp.sp_name
    end
  end

let record_span_ns ?(dom = -1) ?(payload = []) ~cat name dur =
  if t.on then begin
    let dur = max 0 dur in
    span_record (span_acc ~cat ~dom name) dur;
    record ~dom ~payload:(("dur_ns", Int dur) :: payload) ~cat ~phase:End name
  end

let sample ?(dom = -1) ~cat name v =
  if t.on then span_record (span_acc ~cat ~dom name) (max 0 v)

let span_stats () =
  Hashtbl.fold
    (fun _ sa acc ->
      {
        span_name = sa.sa_name;
        span_cat = sa.sa_cat;
        span_dom = sa.sa_dom;
        span_count = Hist.count sa.sa_hist;
        span_total_ns = Hist.total sa.sa_hist;
        span_min_ns = Hist.min_ns sa.sa_hist;
        span_max_ns = Hist.max_ns sa.sa_hist;
        span_hist = sa.sa_hist;
      }
      :: acc)
    t.spans []
  |> List.sort (fun a b -> compare (a.span_name, a.span_dom) (b.span_name, b.span_dom))

(* ---- export ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_to_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.17g" f
  | String s -> "\"" ^ json_escape s ^ "\""
  | Bool b -> string_of_bool b

let payload_to_json payload =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ json_escape k ^ "\":" ^ value_to_json v) payload)
  ^ "}"

let phase_letter = function Instant -> "I" | Begin -> "B" | End -> "E"

let to_json_line (ev : event) =
  Printf.sprintf
    "{\"seq\":%d,\"t\":%d,\"dom\":%d,\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"%s\",\"depth\":%d,\"flow\":%d,\"args\":%s}"
    ev.seq ev.time ev.dom
    (json_escape (category_name ev.cat))
    (json_escape ev.name) (phase_letter ev.phase) ev.depth ev.flow (payload_to_json ev.payload)

let export_jsonl oc =
  List.iter
    (fun ev ->
      output_string oc (to_json_line ev);
      output_char oc '\n')
    (events ());
  List.iter
    (fun (name, v) -> Printf.fprintf oc "{\"counter\":\"%s\",\"value\":%d}\n" (json_escape name) v)
    (counters ());
  List.iter
    (fun (name, v) -> Printf.fprintf oc "{\"gauge\":\"%s\",\"value\":%d}\n" (json_escape name) v)
    (gauges ());
  List.iter
    (fun s ->
      Printf.fprintf oc
        "{\"span\":\"%s\",\"cat\":\"%s\",\"dom\":%d,\"count\":%d,\"total_ns\":%d,\"min_ns\":%d,\"max_ns\":%d,\"p50_ns\":%.1f,\"p95_ns\":%.1f,\"p99_ns\":%.1f}\n"
        (json_escape s.span_name)
        (json_escape (category_name s.span_cat))
        s.span_dom s.span_count s.span_total_ns s.span_min_ns s.span_max_ns
        (Hist.percentile s.span_hist 50.) (Hist.percentile s.span_hist 95.)
        (Hist.percentile s.span_hist 99.))
    (span_stats ())

(* ---- per-domain metrics registry ----

   The in-band monitoring plane: subsystems register named counters,
   gauges and histogram-backed summaries per domain; an exposition
   handler (Uhttp.Metrics_export) renders a domain's snapshot as
   Prometheus-style text over the simulated network, and the Monitor
   appliance scrapes it. Orthogonal to the event tracer above: tracing
   can be off while the monitoring plane is on, and vice versa.

   Cost discipline: with the registry disabled (the default) an update
   site is one load and one predictable branch — the monitor-guard
   benchmark pins that cost. Pull-based metrics ([register_read]) cost
   nothing at the update site at all: the callback reads state the
   subsystem already maintains, evaluated only at snapshot time. *)

module Metrics = struct
  type kind = Counter | Gauge | Summary

  type metric = {
    m_name : string;
    m_dom : int;
    m_kind : kind;
    mutable m_value : int;
    m_read : (unit -> int) option;
    m_hist : Hist.t option;
  }

  type sample = {
    s_name : string;
    s_dom : int;
    s_kind : kind;
    s_value : int;  (* counter/gauge value; observation count for summaries *)
    s_sum : int;  (* summaries only: total of observations *)
    s_quantiles : (float * float) list;  (* summaries only: (q, value) *)
  }

  let quantiles = [ 0.5; 0.9; 0.99 ]
  let m_on = ref false
  let enabled () = !m_on
  let registry : (string * int, metric) Hashtbl.t = Hashtbl.create 64
  let enable () = m_on := true
  let disable () = m_on := false
  let reset () = Hashtbl.reset registry

  (* Registration is itself gated: with the plane off, subsystem create
     paths leave no trace in the registry, so successive disabled runs in
     one process cannot accumulate stale read callbacks. The returned
     metric is then detached — updates to it are no-ops. *)
  let register ?(dom = -1) ~kind ?read ?hist name =
    let m = { m_name = name; m_dom = dom; m_kind = kind; m_value = 0; m_read = read; m_hist = hist } in
    if !m_on then Hashtbl.replace registry (name, dom) m;
    m

  let counter ?dom name = register ?dom ~kind:Counter name
  let gauge ?dom name = register ?dom ~kind:Gauge name
  let summary ?dom name = register ?dom ~kind:Summary ~hist:(Hist.create ()) name
  let register_read ?dom ~kind name read = ignore (register ?dom ~kind ~read name)

  (* Domain teardown: drop every series the domain registered, so read
     callbacks (which capture device and stack state) do not pin a
     destroyed domain's world.  Cost is one pass over the registry —
     which holds live domains' series only, precisely because destroy
     calls this. *)
  let unregister_dom dom =
    let doomed =
      Hashtbl.fold (fun ((_, d) as k) _ acc -> if d = dom then k :: acc else acc) registry []
    in
    List.iter (Hashtbl.remove registry) doomed

  (* A metric attached to nothing: every update is a no-op. Lets a
     subsystem keep one unconditional update site while opting out of
     registration (e.g. the exposition server's own internal Uhttp). *)
  let detached =
    { m_name = ""; m_dom = -1; m_kind = Counter; m_value = 0; m_read = None; m_hist = None }

  let inc m n =
    if !m_on && n > 0 then
      m.m_value <- (if m.m_value > max_int - n then max_int else m.m_value + n)

  let set m v = if !m_on then m.m_value <- v
  let add m d = if !m_on then m.m_value <- m.m_value + d

  let observe m v =
    if !m_on then match m.m_hist with Some h -> Hist.record h (max 0 v) | None -> ()

  let value m = match m.m_read with Some f -> f () | None -> m.m_value

  let sample_of m =
    match m.m_hist with
    | Some h ->
      {
        s_name = m.m_name;
        s_dom = m.m_dom;
        s_kind = m.m_kind;
        s_value = Hist.count h;
        s_sum = Hist.total h;
        s_quantiles = List.map (fun q -> (q, Hist.percentile h (q *. 100.))) quantiles;
      }
    | None ->
      { s_name = m.m_name; s_dom = m.m_dom; s_kind = m.m_kind; s_value = value m; s_sum = 0;
        s_quantiles = [] }

  let snapshot ?dom () =
    Hashtbl.fold
      (fun (_, d) m acc ->
        match dom with Some want when d <> want -> acc | _ -> sample_of m :: acc)
      registry []
    |> List.sort (fun a b -> compare (a.s_name, a.s_dom) (b.s_name, b.s_dom))

  (* ---- Prometheus-style text exposition ---- *)

  let sanitize name =
    String.map (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_') name

  let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Summary -> "summary"

  let to_text ?dom () =
    let b = Buffer.create 1024 in
    List.iter
      (fun s ->
        let n = sanitize s.s_name in
        let lbl = if s.s_dom < 0 then "" else Printf.sprintf "{dom=\"%d\"}" s.s_dom in
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" n (kind_name s.s_kind));
        match s.s_kind with
        | Counter | Gauge -> Buffer.add_string b (Printf.sprintf "%s%s %d\n" n lbl s.s_value)
        | Summary ->
          List.iter
            (fun (q, v) ->
              let ql =
                if s.s_dom < 0 then Printf.sprintf "{quantile=\"%g\"}" q
                else Printf.sprintf "{dom=\"%d\",quantile=\"%g\"}" s.s_dom q
              in
              Buffer.add_string b (Printf.sprintf "%s%s %.1f\n" n ql v))
            s.s_quantiles;
          Buffer.add_string b (Printf.sprintf "%s_sum%s %d\n" n lbl s.s_sum);
          Buffer.add_string b (Printf.sprintf "%s_count%s %d\n" n lbl s.s_value))
      (snapshot ?dom ());
    Buffer.contents b
end

(* ---- continuous virtual-time profiler ----

   Attributes vCPU time to ambient layer frames. Frames form a tree
   interned at push time (one hashtable probe per push; the folded-stack
   string is built once per distinct stack, never on the hot path), and
   the current position is a single mutable pointer — capturing the
   ambient stack for a deferred callback is one load, exactly like flow
   ids. Because time is virtual and vCPU charges are discrete, every
   charge event is a sample tick whose weight is the charged duration:
   the profile is an exact, complete attribution of every vCPU
   nanosecond, not a statistical estimate — simulation makes the
   continuous profiler free of sampling error. *)

module Prof = struct
  type node = {
    n_name : string;
    n_parent : node option;
    n_folded : string;  (* "engine;netif;ip;tcp" *)
    n_children : (string, node) Hashtbl.t;
    n_accs : (int, acc) Hashtbl.t;  (* dom -> accumulator *)
  }

  and acc = { mutable a_run_ns : int; mutable a_wait_ns : int; mutable a_samples : int }

  type stat = {
    p_dom : int;
    p_stack : string;
    p_run_ns : int;
    p_wait_ns : int;
    p_samples : int;
  }

  let p_on = ref false
  let enabled () = !p_on

  let make_root () =
    {
      n_name = "engine";
      n_parent = None;
      n_folded = "engine";
      n_children = Hashtbl.create 8;
      n_accs = Hashtbl.create 8;
    }

  let root = ref (make_root ())
  let cur = ref !root
  let enable () = p_on := true
  let disable () = p_on := false

  let reset () =
    root := make_root ();
    cur := !root

  let current_node () = !cur
  let is_root n = n.n_parent = None

  (* Re-entering a layer that is already on the ambient stack pops back
     to that frame instead of nesting: the stack chains across deferred
     continuations (each packet's callbacks inherit the stack of the
     code that scheduled them), so without the pop a ping-pong between
     two layers would grow one node chain per packet —
     engine;tcp;netif;netif;... at depth 10^4 after 10^4 packets. With
     it, depth is bounded by the number of distinct layer names. *)
  let rec ancestor_named name n =
    if n.n_name = name then Some n
    else match n.n_parent with Some p -> ancestor_named name p | None -> None

  let enter name =
    let parent = !cur in
    match ancestor_named name parent with
    | Some n -> cur := n
    | None ->
      let child =
        match Hashtbl.find_opt parent.n_children name with
        | Some c -> c
        | None ->
          let c =
            {
              n_name = name;
              n_parent = Some parent;
              n_folded = parent.n_folded ^ ";" ^ name;
              n_children = Hashtbl.create 4;
              n_accs = Hashtbl.create 4;
            }
          in
          Hashtbl.replace parent.n_children name c;
          c
      in
      cur := child

  let with_frame name f =
    if not !p_on then f ()
    else begin
      let prev = !cur in
      enter name;
      Fun.protect ~finally:(fun () -> cur := prev) f
    end

  let wrap node f =
    let prev = !cur in
    cur := node;
    Fun.protect ~finally:(fun () -> cur := prev) f

  let account ?(dom = -1) ?(wait_ns = 0) run_ns =
    if !p_on then begin
      let node = !cur in
      let a =
        match Hashtbl.find_opt node.n_accs dom with
        | Some a -> a
        | None ->
          let a = { a_run_ns = 0; a_wait_ns = 0; a_samples = 0 } in
          Hashtbl.replace node.n_accs dom a;
          a
      in
      a.a_run_ns <- a.a_run_ns + max 0 run_ns;
      a.a_wait_ns <- a.a_wait_ns + max 0 wait_ns;
      a.a_samples <- a.a_samples + 1
    end

  (* Domain teardown: retired domains must not leave stale series behind
     (same discipline as [Metrics.unregister_dom]). *)
  let unregister_dom dom =
    let rec go n =
      Hashtbl.remove n.n_accs dom;
      Hashtbl.iter (fun _ c -> go c) n.n_children
    in
    go !root

  let stats () =
    let acc = ref [] in
    let rec go n =
      Hashtbl.iter
        (fun dom a ->
          if a.a_samples > 0 then
            acc :=
              {
                p_dom = dom;
                p_stack = n.n_folded;
                p_run_ns = a.a_run_ns;
                p_wait_ns = a.a_wait_ns;
                p_samples = a.a_samples;
              }
              :: !acc)
        n.n_accs;
      Hashtbl.iter (fun _ c -> go c) n.n_children
    in
    go !root;
    List.sort (fun a b -> compare (a.p_stack, a.p_dom) (b.p_stack, b.p_dom)) !acc
end

(* ---- per-packet datapath cost accounting ----

   A fixed set of hops along the RX→app→TX path, each accumulating
   packet count, modeled vCPU ns, and bytes allocated. Allocation is
   measured with [Gc.allocated_bytes] deltas over a region stack, so
   nested hops report exclusive (self) allocation: a parent region
   subtracts everything consumed by regions opened inside it. *)

module Dpath = struct
  type hop = Ring_slot | Netfront | Ip | Tcp | Deliver | App

  let all_hops = [ Ring_slot; Netfront; Ip; Tcp; Deliver; App ]

  let hop_name = function
    | Ring_slot -> "ring"
    | Netfront -> "netfront"
    | Ip -> "ip"
    | Tcp -> "tcp"
    | Deliver -> "deliver"
    | App -> "app"

  let hop_index = function
    | Ring_slot -> 0
    | Netfront -> 1
    | Ip -> 2
    | Tcp -> 3
    | Deliver -> 4
    | App -> 5

  let n_hops = 6

  type hstat = { h_hop : hop; h_pkts : int; h_vcpu_ns : int; h_alloc_b : float }
  type cell = { mutable pkts : int; mutable vcpu_ns : int; mutable alloc_b : float }

  let d_on = ref false
  let enabled () = !d_on
  let cells = Array.init n_hops (fun _ -> { pkts = 0; vcpu_ns = 0; alloc_b = 0. })

  (* The region stack is flat, preallocated, and float-unboxed so that
     measuring does not itself allocate inside measured regions: a
     cons/record/boxed-float per region would charge the instrument's own
     garbage to whichever hop encloses it (tens of thousands of regions
     per run add megabytes). [Gc.allocated_bytes]'s boxed return is the
     only unavoidable residue. Depth 64 is far beyond any real nesting;
     deeper regions saturate and measure as zero rather than crash. *)
  let max_depth = 64
  let depth = ref 0
  let r_idx = Array.make max_depth 0
  let r_start = Array.make max_depth 0.
  let r_inner = Array.make max_depth 0.

  let reset () =
    Array.iter
      (fun c ->
        c.pkts <- 0;
        c.vcpu_ns <- 0;
        c.alloc_b <- 0.)
      cells;
    depth := 0

  (* Datapath totals double as pull metrics on the monitoring plane when
     both are enabled: zero update-site cost, read at snapshot time. *)
  let register_metrics () =
    List.iter
      (fun h ->
        let i = hop_index h in
        let nm = "dpath_" ^ hop_name h in
        Metrics.register_read ~kind:Metrics.Counter (nm ^ "_pkts_total") (fun () -> cells.(i).pkts);
        Metrics.register_read ~kind:Metrics.Counter (nm ^ "_vcpu_ns_total") (fun () ->
            cells.(i).vcpu_ns);
        Metrics.register_read ~kind:Metrics.Counter (nm ^ "_alloc_bytes_total") (fun () ->
            int_of_float cells.(i).alloc_b))
      all_hops

  let enable () =
    d_on := true;
    if Metrics.enabled () then register_metrics ()

  let disable () = d_on := false

  (* OCaml 5.0/5.1's [Gc.allocated_bytes] folds the live minor-heap
     region into its result only around collection boundaries, so between
     minor collections the counter barely moves — and a whole epoch's
     allocation then lands as one minor-heap-sized lump on whichever
     region happens to span the collection. That made per-hop attribution
     a knife-edge on GC phase: an 8-byte/frame change anywhere in the
     program could swing a hop's exclusive bytes by megabytes. Draining
     the minor heap right before sampling makes the counter exact at
     every region edge (~0.4us, and only while the plane is enabled), so
     attribution depends on what a hop allocates, not on where the GC
     clock was. *)
  let sample () =
    Gc.minor ();
    Gc.allocated_bytes ()

  let enter hop =
    let d = !depth in
    if d < max_depth then begin
      r_idx.(d) <- hop_index hop;
      r_inner.(d) <- 0.;
      r_start.(d) <- sample ()
    end;
    depth := d + 1

  let leave ?(pkts = 1) ~vcpu_ns () =
    let d = !depth - 1 in
    depth := d;
    if d >= 0 && d < max_depth then begin
      let total = sample () -. r_start.(d) in
      let self = if total > r_inner.(d) then total -. r_inner.(d) else 0. in
      if d > 0 then r_inner.(d - 1) <- r_inner.(d - 1) +. total;
      let c = cells.(r_idx.(d)) in
      c.pkts <- c.pkts + pkts;
      c.vcpu_ns <- c.vcpu_ns + vcpu_ns;
      c.alloc_b <- c.alloc_b +. self
    end

  let measure hop ?(pkts = 1) ~vcpu_ns f =
    if not !d_on then f ()
    else begin
      enter hop;
      match f () with
      | v ->
        leave ~pkts ~vcpu_ns ();
        v
      | exception e ->
        leave ~pkts ~vcpu_ns ();
        raise e
    end

  let stats () =
    List.filter_map
      (fun h ->
        let c = cells.(hop_index h) in
        if c.pkts = 0 then None
        else Some { h_hop = h; h_pkts = c.pkts; h_vcpu_ns = c.vcpu_ns; h_alloc_b = c.alloc_b })
      all_hops
end

(* ---- profile export (profiler + datapath tables as JSON lines) ---- *)

let add_profile_lines b =
  List.iter
    (fun (s : Prof.stat) ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"prof\":{\"dom\":%d,\"stack\":\"%s\",\"run_ns\":%d,\"wait_ns\":%d,\"samples\":%d}}\n"
           s.Prof.p_dom (json_escape s.Prof.p_stack) s.Prof.p_run_ns s.Prof.p_wait_ns
           s.Prof.p_samples))
    (Prof.stats ());
  List.iter
    (fun (h : Dpath.hstat) ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"dpath\":{\"hop\":\"%s\",\"pkts\":%d,\"vcpu_ns\":%d,\"alloc_bytes\":%.0f}}\n"
           (Dpath.hop_name h.Dpath.h_hop)
           h.Dpath.h_pkts h.Dpath.h_vcpu_ns h.Dpath.h_alloc_b))
    (Dpath.stats ())

let export_profile_jsonl oc =
  output_string oc "{\"profile\":\"v1\"}\n";
  let b = Buffer.create 4096 in
  add_profile_lines b;
  output_string oc (Buffer.contents b)

(* ---- flight recorder ----

   The black box: a bounded per-domain ring of recent notes (retransmits,
   probes, drops, state changes) plus named high-watermarks, kept even
   when full tracing is off. On a failure signal — TCP flow give-up,
   monitor alert firing, nonzero domain exit — [trip] freezes a
   postmortem bundle: the tripping domain's recent notes, watermarks,
   the per-layer profile and datapath cost tables (when those planes are
   on), and a metrics snapshot. Bundles are retained in memory (bounded)
   and optionally written to a directory as JSONL. *)

module Flight = struct
  type fev = { fe_t : int; fe_dom : int; fe_cat : category; fe_name : string; fe_payload : payload }
  type ring = { buf : fev array; mutable len : int; mutable head : int }

  let default_capacity = 256
  let max_bundles = 8

  type fstate = {
    mutable f_on : bool;
    mutable f_cap : int;
    mutable f_dir : string option;
    rings : (int, ring) Hashtbl.t;
    marks : (string, int ref) Hashtbl.t;
    mutable f_trips : int;
    mutable f_bundles : (string * string) list;  (* newest first, bounded *)
    mutable f_seq : int;
  }

  let fs =
    {
      f_on = false;
      f_cap = default_capacity;
      f_dir = None;
      rings = Hashtbl.create 8;
      marks = Hashtbl.create 8;
      f_trips = 0;
      f_bundles = [];
      f_seq = 0;
    }

  let enabled () = fs.f_on

  let enable ?(capacity = default_capacity) ?dir () =
    if capacity <= 0 then invalid_arg "Trace.Flight.enable: capacity must be positive";
    fs.f_cap <- capacity;
    (match dir with Some _ -> fs.f_dir <- dir | None -> ());
    fs.f_on <- true

  let disable () = fs.f_on <- false

  let reset () =
    Hashtbl.reset fs.rings;
    Hashtbl.reset fs.marks;
    fs.f_trips <- 0;
    fs.f_bundles <- [];
    fs.f_seq <- 0;
    fs.f_dir <- None

  let dummy_fev = { fe_t = 0; fe_dom = -1; fe_cat = Sched; fe_name = ""; fe_payload = [] }

  let ring_of dom =
    match Hashtbl.find_opt fs.rings dom with
    | Some r -> r
    | None ->
      let r = { buf = Array.make fs.f_cap dummy_fev; len = 0; head = 0 } in
      Hashtbl.replace fs.rings dom r;
      r

  let note ?(dom = -1) ?(payload = []) ~cat name =
    if fs.f_on then begin
      let r = ring_of dom in
      r.buf.(r.head) <-
        { fe_t = now (); fe_dom = dom; fe_cat = cat; fe_name = name; fe_payload = payload };
      r.head <- (r.head + 1) mod Array.length r.buf;
      if r.len < Array.length r.buf then r.len <- r.len + 1
    end

  let watermark name v =
    if fs.f_on then
      match Hashtbl.find_opt fs.marks name with
      | Some m -> if v > !m then m := v
      | None -> Hashtbl.replace fs.marks name (ref v)

  let recent dom =
    match Hashtbl.find_opt fs.rings dom with
    | None -> []
    | Some r ->
      let cap = Array.length r.buf in
      List.init r.len (fun i -> r.buf.((r.head - r.len + i + (2 * cap)) mod cap))

  let watermarks () =
    Hashtbl.fold (fun name m acc -> (name, !m) :: acc) fs.marks []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  (* Domain teardown: drop the retired domain's ring (postmortem-on-exit
     trips before this runs, so a crash bundle still sees the ring). *)
  let unregister_dom dom = Hashtbl.remove fs.rings dom

  let fev_to_json fe =
    Printf.sprintf "{\"t\":%d,\"dom\":%d,\"cat\":\"%s\",\"name\":\"%s\",\"args\":%s}" fe.fe_t
      fe.fe_dom
      (json_escape (category_name fe.fe_cat))
      (json_escape fe.fe_name) (payload_to_json fe.fe_payload)

  let sanitize_reason s =
    String.map (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_') as c -> c | _ -> '.') s

  let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

  (* Wire-capture hook, installed by the capture plane (Netsim.Capture)
     from above this layer: given the trip's context it returns extra
     bundle lines — the last few captured frames of the implicated flow —
     or "" when nothing is captured. *)
  let capture_hook : (dom:int -> reason:string -> payload:payload -> string) option ref = ref None
  let set_capture_hook h = capture_hook := h

  let build_bundle ~dom ~reason ~payload =
    let b = Buffer.create 4096 in
    Buffer.add_string b
      (Printf.sprintf "{\"flight\":\"postmortem\",\"seq\":%d,\"reason\":\"%s\",\"dom\":%d,\"t\":%d,\"args\":%s}\n"
         fs.f_seq (json_escape reason) dom (now ()) (payload_to_json payload));
    let evs = if dom >= 0 then recent (-1) @ recent dom else recent (-1) in
    List.iter
      (fun fe ->
        Buffer.add_string b (fev_to_json fe);
        Buffer.add_char b '\n')
      (List.sort (fun a b -> compare (a.fe_t, a.fe_dom) (b.fe_t, b.fe_dom)) evs);
    List.iter
      (fun (name, v) ->
        Buffer.add_string b (Printf.sprintf "{\"watermark\":\"%s\",\"max\":%d}\n" (json_escape name) v))
      (watermarks ());
    add_profile_lines b;
    if Metrics.enabled () then begin
      let samples =
        if dom >= 0 then Metrics.snapshot ~dom:(-1) () @ Metrics.snapshot ~dom ()
        else Metrics.snapshot ()
      in
      List.iter
        (fun (s : Metrics.sample) ->
          Buffer.add_string b
            (Printf.sprintf "{\"metric\":\"%s\",\"dom\":%d,\"value\":%d,\"sum\":%d}\n"
               (json_escape s.Metrics.s_name) s.Metrics.s_dom s.Metrics.s_value s.Metrics.s_sum))
        samples
    end;
    (match !capture_hook with
    | None -> ()
    | Some h ->
      let s = h ~dom ~reason ~payload in
      if s <> "" then Buffer.add_string b s);
    Buffer.contents b

  let trip ?(dom = -1) ?(payload = []) ~reason () =
    if fs.f_on then begin
      fs.f_seq <- fs.f_seq + 1;
      fs.f_trips <- fs.f_trips + 1;
      let name = Printf.sprintf "flight-%04d-%s.jsonl" fs.f_seq (sanitize_reason reason) in
      let contents = build_bundle ~dom ~reason ~payload in
      fs.f_bundles <- take max_bundles ((name, contents) :: fs.f_bundles);
      (match fs.f_dir with
      | Some dir -> (
        try
          let oc = open_out (Filename.concat dir name) in
          output_string oc contents;
          close_out oc
        with Sys_error _ -> ())
      | None -> ());
      if t.on then
        record ~dom
          ~payload:(("reason", String reason) :: payload)
          ~cat:(User "flight") ~phase:Instant "flight.trip"
    end

  let trips () = fs.f_trips
  let bundles () = List.rev fs.f_bundles
  let last_bundle () = match fs.f_bundles with [] -> None | hd :: _ -> Some hd
end
