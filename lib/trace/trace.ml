type category =
  | Sched
  | Boot
  | Hypercall
  | Evtchn
  | Gnttab
  | Ring
  | Device
  | Net
  | User of string

let category_name = function
  | Sched -> "sched"
  | Boot -> "boot"
  | Hypercall -> "hypercall"
  | Evtchn -> "evtchn"
  | Gnttab -> "gnttab"
  | Ring -> "ring"
  | Device -> "device"
  | Net -> "net"
  | User s -> s

type value = Int of int | Float of float | String of string | Bool of bool
type payload = (string * value) list
type phase = Instant | Begin | End

type event = {
  seq : int;
  time : int;
  dom : int;
  cat : category;
  name : string;
  phase : phase;
  depth : int;
  payload : payload;
}

let default_capacity = 65536
let max_span_samples = 4096

type counter = { c_name : string; mutable c_value : int }

type span_acc = {
  sa_name : string;
  sa_cat : category;
  sa_dom : int;
  mutable sa_count : int;
  mutable sa_total : int;
  mutable sa_min : int;
  mutable sa_max : int;
  mutable sa_samples : int array;
  mutable sa_nsamples : int;
}

type span_stat = {
  span_name : string;
  span_cat : category;
  span_dom : int;
  span_count : int;
  span_total_ns : int;
  span_min_ns : int;
  span_max_ns : int;
  span_samples : int array;
}

type span = {
  sp_live : bool;
  sp_name : string;
  sp_cat : category;
  sp_dom : int;
  sp_start : int;
  mutable sp_closed : bool;
}

type state = {
  mutable on : bool;
  mutable ring : event array;
  mutable head : int;  (* next write position *)
  mutable length : int;
  mutable dropped : int;
  mutable seq : int;
  mutable depth : int;
  mutable clock : unit -> int;
  mutable clock_base : int;
  mutable last_time : int;
  counters : (string, counter) Hashtbl.t;
  spans : (string * int, span_acc) Hashtbl.t;
}

let dummy_event =
  { seq = 0; time = 0; dom = -1; cat = Sched; name = ""; phase = Instant; depth = 0; payload = [] }

let t =
  {
    on = false;
    ring = [||];
    head = 0;
    length = 0;
    dropped = 0;
    seq = 0;
    depth = 0;
    clock = (fun () -> 0);
    clock_base = 0;
    last_time = 0;
    counters = Hashtbl.create 32;
    spans = Hashtbl.create 32;
  }

let enabled () = t.on

let enable ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.enable: capacity must be positive";
  if Array.length t.ring <> capacity then begin
    t.ring <- Array.make capacity dummy_event;
    t.head <- 0;
    t.length <- 0;
    t.dropped <- 0
  end;
  t.on <- true

let disable () = t.on <- false

let reset () =
  Array.fill t.ring 0 (Array.length t.ring) dummy_event;
  t.head <- 0;
  t.length <- 0;
  t.dropped <- 0;
  t.seq <- 0;
  t.depth <- 0;
  t.last_time <- 0;
  t.clock_base <- 0;
  Hashtbl.iter (fun _ c -> c.c_value <- 0) t.counters;
  Hashtbl.reset t.spans

let set_clock f =
  (* Re-base so a fresh simulator (starting at t=0) continues the trace
     timeline monotonically instead of jumping backwards. *)
  t.clock_base <- t.last_time;
  t.clock <- f

let now () =
  let time = t.clock_base + t.clock () in
  if time > t.last_time then t.last_time <- time;
  t.last_time

let push ev =
  let cap = Array.length t.ring in
  if cap = 0 then begin
    t.ring <- Array.make default_capacity dummy_event;
    t.head <- 0;
    t.length <- 0
  end;
  let cap = Array.length t.ring in
  t.ring.(t.head) <- ev;
  t.head <- (t.head + 1) mod cap;
  if t.length < cap then t.length <- t.length + 1 else t.dropped <- t.dropped + 1

let record ?(dom = -1) ?(payload = []) ~cat ~phase name =
  let seq = t.seq in
  t.seq <- seq + 1;
  push { seq; time = now (); dom; cat; name; phase; depth = t.depth; payload }

let emit ?dom ?payload ~cat name = if t.on then record ?dom ?payload ~cat ~phase:Instant name

let events () =
  let cap = Array.length t.ring in
  List.init t.length (fun i -> t.ring.((t.head - t.length + i + (2 * cap)) mod cap))

let dropped () = t.dropped

(* ---- counters ---- *)

let counter name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace t.counters name c;
    c

let add c n =
  if t.on && n > 0 then
    (* Saturate instead of wrapping negative on overflow. *)
    c.c_value <- (if c.c_value > max_int - n then max_int else c.c_value + n)

let incr c = add c 1
let counter_value c = c.c_value

let counters () =
  Hashtbl.fold (fun name c acc -> (name, c.c_value) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- spans ---- *)

let span_acc ~cat ~dom name =
  let key = (name, dom) in
  match Hashtbl.find_opt t.spans key with
  | Some sa -> sa
  | None ->
    let sa =
      {
        sa_name = name;
        sa_cat = cat;
        sa_dom = dom;
        sa_count = 0;
        sa_total = 0;
        sa_min = max_int;
        sa_max = min_int;
        sa_samples = Array.make 16 0;
        sa_nsamples = 0;
      }
    in
    Hashtbl.replace t.spans key sa;
    sa

let span_record sa dur =
  sa.sa_count <- sa.sa_count + 1;
  sa.sa_total <- sa.sa_total + dur;
  if dur < sa.sa_min then sa.sa_min <- dur;
  if dur > sa.sa_max then sa.sa_max <- dur;
  if sa.sa_nsamples < max_span_samples then begin
    if sa.sa_nsamples = Array.length sa.sa_samples then begin
      let bigger = Array.make (min max_span_samples (2 * sa.sa_nsamples)) 0 in
      Array.blit sa.sa_samples 0 bigger 0 sa.sa_nsamples;
      sa.sa_samples <- bigger
    end;
    sa.sa_samples.(sa.sa_nsamples) <- dur;
    sa.sa_nsamples <- sa.sa_nsamples + 1
  end

let dead_span =
  { sp_live = false; sp_name = ""; sp_cat = Sched; sp_dom = -1; sp_start = 0; sp_closed = true }

let span ?(dom = -1) ?payload ~cat name =
  if not t.on then dead_span
  else begin
    record ~dom ?payload ~cat ~phase:Begin name;
    t.depth <- t.depth + 1;
    { sp_live = true; sp_name = name; sp_cat = cat; sp_dom = dom; sp_start = now (); sp_closed = false }
  end

let finish ?(payload = []) sp =
  if sp.sp_live && not sp.sp_closed then begin
    sp.sp_closed <- true;
    if t.on then begin
      let dur = max 0 (now () - sp.sp_start) in
      span_record (span_acc ~cat:sp.sp_cat ~dom:sp.sp_dom sp.sp_name) dur;
      if t.depth > 0 then t.depth <- t.depth - 1;
      record ~dom:sp.sp_dom
        ~payload:(("dur_ns", Int dur) :: payload)
        ~cat:sp.sp_cat ~phase:End sp.sp_name
    end
  end

let record_span_ns ?(dom = -1) ~cat name dur =
  if t.on then begin
    let dur = max 0 dur in
    span_record (span_acc ~cat ~dom name) dur;
    record ~dom ~payload:[ ("dur_ns", Int dur) ] ~cat ~phase:End name
  end

let span_stats () =
  Hashtbl.fold
    (fun _ sa acc ->
      {
        span_name = sa.sa_name;
        span_cat = sa.sa_cat;
        span_dom = sa.sa_dom;
        span_count = sa.sa_count;
        span_total_ns = sa.sa_total;
        span_min_ns = (if sa.sa_count = 0 then 0 else sa.sa_min);
        span_max_ns = (if sa.sa_count = 0 then 0 else sa.sa_max);
        span_samples = Array.sub sa.sa_samples 0 sa.sa_nsamples;
      }
      :: acc)
    t.spans []
  |> List.sort (fun a b -> compare (a.span_name, a.span_dom) (b.span_name, b.span_dom))

(* ---- export ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_to_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.17g" f
  | String s -> "\"" ^ json_escape s ^ "\""
  | Bool b -> string_of_bool b

let payload_to_json payload =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ json_escape k ^ "\":" ^ value_to_json v) payload)
  ^ "}"

let phase_letter = function Instant -> "I" | Begin -> "B" | End -> "E"

let to_json_line (ev : event) =
  Printf.sprintf "{\"seq\":%d,\"t\":%d,\"dom\":%d,\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"%s\",\"depth\":%d,\"args\":%s}"
    ev.seq ev.time ev.dom
    (json_escape (category_name ev.cat))
    (json_escape ev.name) (phase_letter ev.phase) ev.depth (payload_to_json ev.payload)

let export_jsonl oc =
  List.iter
    (fun ev ->
      output_string oc (to_json_line ev);
      output_char oc '\n')
    (events ());
  List.iter
    (fun (name, v) -> Printf.fprintf oc "{\"counter\":\"%s\",\"value\":%d}\n" (json_escape name) v)
    (counters ());
  List.iter
    (fun s ->
      Printf.fprintf oc
        "{\"span\":\"%s\",\"cat\":\"%s\",\"dom\":%d,\"count\":%d,\"total_ns\":%d,\"min_ns\":%d,\"max_ns\":%d}\n"
        (json_escape s.span_name)
        (json_escape (category_name s.span_cat))
        s.span_dom s.span_count s.span_total_ns s.span_min_ns s.span_max_ns)
    (span_stats ())
