(** Unified event tracing and metrics, in the spirit of Xen's xentrace.

    One global, process-wide trace: a bounded in-memory ring of typed
    events stamped with the virtual clock, plus named monotonic counters
    and latency-recording spans backed by mergeable log-linear
    histograms, plus causal flow ids (Dapper-style) that propagate across
    the layers of a request. Everything is a no-op until {!enable} is
    called; with tracing off every instrumentation site costs a single
    branch (guard payload construction with {!enabled} at call sites).

    The library is dependency-free so it can sit below the simulation
    engine in the build graph; the engine installs its virtual clock via
    {!set_clock} and renders summaries (see [Engine.Trace_report]). *)

(** Event categories mirror the subsystems of the simulated stack. *)
type category =
  | Sched  (** engine event-loop dispatch, vCPU accounting *)
  | Boot  (** domain construction, sealing, appliance bring-up *)
  | Hypercall
  | Evtchn
  | Gnttab
  | Ring  (** shared-memory ring push/consume *)
  | Device  (** netif/blkif request-response *)
  | Net  (** network stack (TCP rtt, retransmit, rx processing) *)
  | User of string

val category_name : category -> string

(** Typed event payloads, kept primitive so emission never allocates
    surprisingly. *)
type value = Int of int | Float of float | String of string | Bool of bool

type payload = (string * value) list

type phase =
  | Instant
  | Begin  (** span opened *)
  | End  (** span closed; payload carries ["dur_ns"] *)

type event = {
  seq : int;  (** global emission order, never reused until {!reset} *)
  time : int;  (** virtual-clock ns, monotonically non-decreasing *)
  dom : int;  (** domain id, [-1] when not attributable *)
  cat : category;
  name : string;
  phase : phase;
  depth : int;  (** span nesting depth at emission time *)
  flow : int;  (** causal flow id, [-1] when no flow is current *)
  payload : payload;
}

(** {1 Log-linear histograms}

    HDR-style: exact unit-width buckets for small values, then a fixed
    number of sub-buckets per power-of-two octave, giving a bounded
    relative quantization error (< 1%) at any magnitude with O(1) record
    cost and compact, mergeable storage. *)

module Hist : sig
  type t

  val create : unit -> t

  (** Record one (non-negative; clamped) value. *)
  val record : t -> int -> unit

  val count : t -> int
  val total : t -> int

  (** Exact minimum / maximum of recorded values; 0 when empty. *)
  val min_ns : t -> int

  val max_ns : t -> int
  val mean : t -> float

  (** Functional merge into a fresh histogram. *)
  val merge : t -> t -> t

  (** [percentile h p] for [p] in [0..100]: the bucket-midpoint estimate
      at that rank, clamped to the exact recorded min/max (so p0 and p100
      are exact). 0 when empty. *)
  val percentile : t -> float -> float

  (** Non-empty buckets as [(lo, hi_inclusive, count)], ascending. *)
  val buckets : t -> (int * int * int) list
end

(** {1 Lifecycle} *)

val enabled : unit -> bool

(** [enable ()] turns tracing on. [capacity] bounds the event ring
    (default 65536); once full, the oldest events are overwritten and
    {!dropped} counts them. Idempotent apart from resizing. *)
val enable : ?capacity:int -> unit -> unit

val disable : unit -> unit

(** Drop all recorded events, counter values, span statistics and flow
    state (counter registrations survive). Does not change enabled/clock
    state. *)
val reset : unit -> unit

(** Install the virtual clock. Each installation re-bases timestamps so
    that a trace spanning several simulator instances (each starting at
    t=0) remains monotonically non-decreasing end to end. *)
val set_clock : (unit -> int) -> unit

(** {1 Events} *)

(** [emit ~dom ~payload ~cat name] appends an instant event. No-op when
    disabled, but guard calls that build a payload with {!enabled} so the
    list is never allocated. *)
val emit : ?dom:int -> ?payload:payload -> cat:category -> string -> unit

(** Recorded events, oldest first. *)
val events : unit -> event list

(** Events overwritten due to ring wraparound since the last {!reset}. *)
val dropped : unit -> int

(** {1 Flows}

    A flow id names one causal request as it crosses layers: allocated
    where a request enters the system (netif backend RX), stamped into
    every event emitted while it is ambient, and propagated across
    asynchronous hops by the engine scheduler (see [Engine.Sim]), which
    captures the current flow when a callback is scheduled and restores
    it when the callback runs. *)

module Flow : sig
  type id = int

  (** [-1]: no flow. *)
  val none : id

  (** The ambient flow id, {!none} when unset. Cheap (one load). *)
  val current : unit -> id

  (** Allocate a fresh id and emit a ["flow.begin"] event stamped with
      it. Does not change the ambient flow; wrap work with {!with_flow}. *)
  val start : ?dom:int -> unit -> id

  (** [with_flow id f] runs [f] with [id] as the ambient flow, restoring
      the previous flow afterwards (exception-safe). When [id < 0], runs
      [f] unchanged. *)
  val with_flow : id -> (unit -> 'a) -> 'a

  (** Like {!with_flow} but also installs [id = -1] (used by the
      scheduler to restore a captured context verbatim). *)
  val wrap : id -> (unit -> unit) -> unit
end

(** {1 Counters}

    Counters are interned by name at first use and live for the whole
    process; only their values react to enable/reset. Increments saturate
    at [max_int] rather than wrapping negative. *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** All registered counters as [(name, value)], sorted by name. *)
val counters : unit -> (string * int) list

(** {1 Gauges}

    Gauges hold an instantaneous value (ring occupancy, queue depth,
    connection count) rather than a monotonic total: they can go down.
    Like counters they are interned by name for the whole process, cost
    one load-and-branch when tracing is disabled, and have their values
    (not registrations) dropped by {!reset}. *)

type gauge

val gauge : string -> gauge
val gauge_set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit
val gauge_value : gauge -> int

(** All registered gauges as [(name, value)], sorted by name. *)
val gauges : unit -> (string * int) list

(** {1 Spans}

    A span measures the virtual time between {!span} and {!finish},
    emitting paired [Begin]/[End] events and recording the duration into
    a per-(name, domain) histogram. Closing is idempotent. *)

type span

val span : ?dom:int -> ?payload:payload -> cat:category -> string -> span
val finish : ?payload:payload -> span -> unit

(** [record_span_ns ~dom ~cat name dur] records a duration measured
    elsewhere (e.g. a TCP rtt probe, or a vCPU slice whose bounds are
    only known after the fact) into the same statistics, emitting a
    single [End] event stamped now. The offline analyzer treats such an
    event as a retroactive interval [[t - dur, t]] (shifted earlier by a
    ["lag_ns"] payload when present). *)
val record_span_ns : ?dom:int -> ?payload:payload -> cat:category -> string -> int -> unit

(** [sample ~dom ~cat name v] records into the same per-(name, domain)
    histogram WITHOUT emitting an event — for high-frequency series where
    the distribution matters but per-occurrence events would flood the
    ring. *)
val sample : ?dom:int -> cat:category -> string -> int -> unit

type span_stat = {
  span_name : string;
  span_cat : category;
  span_dom : int;
  span_count : int;
  span_total_ns : int;
  span_min_ns : int;
  span_max_ns : int;
  span_hist : Hist.t;  (** full log-linear distribution of durations *)
}

(** All span statistics, sorted by (name, dom). *)
val span_stats : unit -> span_stat list

(** {1 Export} *)

(** One event as a single-line JSON object (no trailing newline):
    [{"seq":..,"t":..,"dom":..,"cat":"..","name":"..","ph":"I|B|E",
      "depth":..,"flow":..,"args":{..}}]. *)
val to_json_line : event -> string

(** Write the whole trace as JSON lines: every event, then one
    [{"counter":..}] line per counter and one [{"span":..}] line per span
    statistic (count/total/min/max plus histogram-derived p50/p95/p99).
    Deterministic for deterministic runs. *)
val export_jsonl : out_channel -> unit

(** {1 Per-domain metrics registry}

    The in-band monitoring plane: subsystems register named counters,
    gauges and {!Hist}-backed summaries attributed to a domain; the
    registry is snapshotted per domain and rendered as Prometheus-style
    text by the exposition handler ([Uhttp.Metrics_export]), which the
    monitor appliance scrapes over simulated TCP.

    Orthogonal to the event tracer: either plane can be on while the
    other is off. Disabled (the default), an update site costs one load
    and one predictable branch, and registration is a no-op — figure
    output is byte-identical with the plane compiled in. *)

module Metrics : sig
  type kind = Counter | Gauge | Summary
  type metric

  (** One registry entry at snapshot time. For counters/gauges, [s_value]
      is the value and the other fields are empty; for summaries,
      [s_value] is the observation count, [s_sum] the total, and
      [s_quantiles] the (q, estimate) pairs for q in {0.5, 0.9, 0.99}. *)
  type sample = {
    s_name : string;
    s_dom : int;
    s_kind : kind;
    s_value : int;
    s_sum : int;
    s_quantiles : (float * float) list;
  }

  val enabled : unit -> bool
  val enable : unit -> unit
  val disable : unit -> unit

  (** Drop every registration (unlike the tracer's {!reset}, which keeps
      counter registrations: metric read-callbacks capture subsystem
      state, so they must not outlive the world that registered them). *)
  val reset : unit -> unit

  (** Register a push-updated metric owned by the caller. [dom] defaults
      to [-1] (unattributed). When the plane is disabled the metric is
      created but not entered in the registry, and updates to it are
      no-ops. Re-registering the same (name, dom) replaces the entry. *)
  val counter : ?dom:int -> string -> metric

  val gauge : ?dom:int -> string -> metric
  val summary : ?dom:int -> string -> metric

  (** [register_read ~dom ~kind name read] registers a pull metric whose
      value is [read ()] evaluated at snapshot time — zero update-site
      cost for stats the subsystem already maintains. *)
  val register_read : ?dom:int -> kind:kind -> string -> (unit -> int) -> unit

  (** [unregister_dom dom] drops every series registered under [dom].
      Called from domain teardown so read callbacks do not pin a
      destroyed domain's devices and stack. *)
  val unregister_dom : int -> unit

  (** A metric attached to nothing: every update is a no-op. Lets a
      subsystem keep one unconditional update site while opting out of
      registration. *)
  val detached : metric

  (** Saturating add of [n > 0] (counters). *)
  val inc : metric -> int -> unit

  (** Gauge store / signed delta. *)
  val set : metric -> int -> unit

  val add : metric -> int -> unit

  (** Record one observation into a summary's histogram. *)
  val observe : metric -> int -> unit

  val value : metric -> int

  (** All samples, optionally restricted to one domain, sorted by
      (name, dom). Deterministic for deterministic runs. *)
  val snapshot : ?dom:int -> unit -> sample list

  (** Prometheus-style text exposition of {!snapshot}: a [# TYPE] line
      per metric, [name{dom="N"} value] series, and for summaries the
      quantile series plus [_sum]/[_count]. *)
  val to_text : ?dom:int -> unit -> string
end

(** {1 Continuous virtual-time profiler}

    Attributes vCPU time to ambient layer/callsite frames
    ([engine;netif;ip;tcp;app]). Frames are pushed with {!Prof.with_frame}
    around layer entry points and propagated across asynchronous hops by
    the engine scheduler exactly like flow ids: [Engine.Sim.at] captures
    {!Prof.current_node} (one load) and re-installs it around the deferred
    callback. Every vCPU charge ([Xensim.Domain.reserve_slice]) is a
    sample tick on the virtual-time axis whose weight is the charged
    duration, so the resulting folded stacks are an exact attribution of
    every vCPU nanosecond — the simulator's continuous profiler has no
    sampling error by construction. Folded stacks merge by summation
    (the [profile diff] CLI relies on this). Disabled (the default),
    every site costs one load and one predictable branch. *)

module Prof : sig
  (** A position in the interned frame tree (an ambient stack). *)
  type node

  type stat = {
    p_dom : int;  (** domain charged, [-1] when unattributed *)
    p_stack : string;  (** folded stack, e.g. ["engine;netif;ip;tcp"] *)
    p_run_ns : int;  (** vCPU ns charged under this exact stack *)
    p_wait_ns : int;  (** vCPU-queue wait ns behind those charges *)
    p_samples : int;  (** number of charge ticks *)
  }

  val enabled : unit -> bool
  val enable : unit -> unit
  val disable : unit -> unit

  (** Drop all accumulated stacks and return to the root frame. Do not
      call while frames are pushed. *)
  val reset : unit -> unit

  (** The ambient stack position. Cheap (one load); used by the scheduler
      to capture context for deferred callbacks. *)
  val current_node : unit -> node

  (** True for the root ([engine]) frame — no need to wrap callbacks
      scheduled from the root. *)
  val is_root : node -> bool

  (** [with_frame name f] runs [f] with [name] pushed on the ambient
      stack, restoring afterwards (exception-safe). When the profiler is
      disabled, runs [f] unchanged — guard call sites with {!enabled} so
      the closure is never allocated. *)
  val with_frame : string -> (unit -> 'a) -> 'a

  (** [wrap node f] runs [f] with the ambient stack restored to a
      captured [node] (scheduler use). *)
  val wrap : node -> (unit -> unit) -> unit

  (** [account ~dom ~wait_ns run_ns] attributes one vCPU charge to the
      ambient stack. Called from the vCPU accounting chokepoint. *)
  val account : ?dom:int -> ?wait_ns:int -> int -> unit

  (** Drop the domain's series from every frame (domain teardown). *)
  val unregister_dom : int -> unit

  (** All non-empty (stack, dom) accumulators, sorted by (stack, dom).
      Deterministic for deterministic runs. *)
  val stats : unit -> stat list
end

(** {1 Per-packet datapath cost accounting}

    A fixed set of hops along the packet path — backend ring slot,
    netfront delivery, IP input, TCP processing, receive-buffer delivery,
    app reply — each accumulating packet count, modeled vCPU cost, and
    allocated bytes. Allocation is measured as [Gc.allocated_bytes]
    deltas over a region stack: nested hops report {e exclusive} (self)
    allocation, a parent subtracting everything consumed by regions
    opened inside it. Totals are process-global (not per-domain) and
    deterministic for a fixed binary and seed, so `bench --out` can pin a
    per-packet cost trajectory. When the {!Metrics} plane is enabled at
    {!Dpath.enable} time, per-hop totals are also exposed as pull
    metrics ([dpath_<hop>_{pkts,vcpu_ns,alloc_bytes}_total]). *)

module Dpath : sig
  type hop = Ring_slot | Netfront | Ip | Tcp | Deliver | App

  type hstat = {
    h_hop : hop;
    h_pkts : int;
    h_vcpu_ns : int;
    h_alloc_b : float;  (** exclusive allocated bytes in this hop *)
  }

  val all_hops : hop list
  val hop_name : hop -> string
  val enabled : unit -> bool
  val enable : unit -> unit
  val disable : unit -> unit
  val reset : unit -> unit

  (** [measure hop ~pkts ~vcpu_ns f] runs [f] as one region of [hop],
      charging it [pkts] packets (default 1), [vcpu_ns] of modeled vCPU
      cost, and the bytes allocated inside [f] minus nested regions.
      Runs [f] unchanged when disabled — guard call sites with {!enabled}
      so the closure and cost arguments are never constructed. *)
  val measure : hop -> ?pkts:int -> vcpu_ns:int -> (unit -> 'a) -> 'a

  (** Hops with at least one packet, in path order. *)
  val stats : unit -> hstat list
end

(** Write the profiler and datapath tables as JSON lines: a
    [{"profile":"v1"}] header, one [{"prof":{..}}] line per (stack, dom)
    and one [{"dpath":{..}}] line per hop. Input to [mirage_sim profile]. *)
val export_profile_jsonl : out_channel -> unit

(** {1 Flight recorder and postmortem bundles}

    The black box: a bounded per-domain ring of recent notes (retransmit,
    persist probes, drops, failure breadcrumbs) plus named
    high-watermarks, cheap enough to leave always-on. On a failure signal
    — TCP flow give-up ([Timeout]), a monitor alert firing, a nonzero
    domain exit — {!Flight.trip} freezes a postmortem bundle: the
    tripping domain's recent notes, the watermarks, the per-layer
    profile/datapath cost tables (when those planes are on) and a metrics
    snapshot, as JSON lines. Bundles are retained in memory (last 8) and
    optionally written to a directory. Clean runs trip nothing and write
    nothing. *)

module Flight : sig
  (** One recorded breadcrumb. *)
  type fev = {
    fe_t : int;
    fe_dom : int;
    fe_cat : category;
    fe_name : string;
    fe_payload : payload;
  }

  val enabled : unit -> bool

  (** [enable ~capacity ~dir ()] turns the recorder on. [capacity] bounds
      each per-domain ring (default 256, applies to rings created from
      now on); [dir], when given, is where {!trip} writes each bundle as
      [flight-NNNN-<reason>.jsonl]. *)
  val enable : ?capacity:int -> ?dir:string -> unit -> unit

  val disable : unit -> unit

  (** Drop rings, watermarks, retained bundles, trip count and the output
      directory. *)
  val reset : unit -> unit

  (** Append a breadcrumb to [dom]'s ring (no-op when disabled; guard
      payload construction with {!enabled}). *)
  val note : ?dom:int -> ?payload:payload -> cat:category -> string -> unit

  (** [watermark name v] raises the named high-watermark to at least [v]
      (queue depths, buffered bytes). *)
  val watermark : string -> int -> unit

  (** [dom]'s recent notes, oldest first. *)
  val recent : int -> fev list

  (** All high-watermarks as [(name, max)], sorted by name. *)
  val watermarks : unit -> (string * int) list

  (** Freeze a postmortem bundle attributed to [dom] (plus the
      unattributed ring) for [reason]. Also emits a ["flight.trip"] trace
      event when tracing is on. *)
  val trip : ?dom:int -> ?payload:payload -> reason:string -> unit -> unit

  (** Number of trips since the last {!reset}. *)
  val trips : unit -> int

  (** Retained bundles as [(filename, contents)], oldest first. *)
  val bundles : unit -> (string * string) list

  val last_bundle : unit -> (string * string) option

  (** Drop the domain's ring (domain teardown; postmortem-on-exit trips
      before this). *)
  val unregister_dom : int -> unit

  (** Install (or remove, with [None]) the wire-capture hook: called
      while building each {!trip} bundle with the trip's context, it
      returns extra bundle lines — the capture plane ([Netsim.Capture])
      uses this to freeze the last few captured frames of the implicated
      flow into the postmortem. Returning [""] appends nothing. *)
  val set_capture_hook : (dom:int -> reason:string -> payload:payload -> string) option -> unit
end
