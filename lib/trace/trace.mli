(** Unified event tracing and metrics, in the spirit of Xen's xentrace.

    One global, process-wide trace: a bounded in-memory ring of typed
    events stamped with the virtual clock, plus named monotonic counters
    and latency-recording spans. Everything is a no-op until {!enable} is
    called; with tracing off every instrumentation site costs a single
    branch (guard payload construction with {!enabled} at call sites).

    The library is dependency-free so it can sit below the simulation
    engine in the build graph; the engine installs its virtual clock via
    {!set_clock} and renders summaries (see [Engine.Trace_report]). *)

(** Event categories mirror the subsystems of the simulated stack. *)
type category =
  | Sched  (** engine event-loop dispatch *)
  | Boot  (** domain construction, sealing, appliance bring-up *)
  | Hypercall
  | Evtchn
  | Gnttab
  | Ring  (** shared-memory ring push/consume *)
  | Device  (** netif/blkif request-response *)
  | Net  (** network stack (TCP rtt, retransmit) *)
  | User of string

val category_name : category -> string

(** Typed event payloads, kept primitive so emission never allocates
    surprisingly. *)
type value = Int of int | Float of float | String of string | Bool of bool

type payload = (string * value) list

type phase =
  | Instant
  | Begin  (** span opened *)
  | End  (** span closed; payload carries ["dur_ns"] *)

type event = {
  seq : int;  (** global emission order, never reused until {!reset} *)
  time : int;  (** virtual-clock ns, monotonically non-decreasing *)
  dom : int;  (** domain id, [-1] when not attributable *)
  cat : category;
  name : string;
  phase : phase;
  depth : int;  (** span nesting depth at emission time *)
  payload : payload;
}

(** {1 Lifecycle} *)

val enabled : unit -> bool

(** [enable ()] turns tracing on. [capacity] bounds the event ring
    (default 65536); once full, the oldest events are overwritten and
    {!dropped} counts them. Idempotent apart from resizing. *)
val enable : ?capacity:int -> unit -> unit

val disable : unit -> unit

(** Drop all recorded events, counter values and span statistics (counter
    registrations survive). Does not change enabled/clock state. *)
val reset : unit -> unit

(** Install the virtual clock. Each installation re-bases timestamps so
    that a trace spanning several simulator instances (each starting at
    t=0) remains monotonically non-decreasing end to end. *)
val set_clock : (unit -> int) -> unit

(** {1 Events} *)

(** [emit ~dom ~payload ~cat name] appends an instant event. No-op when
    disabled, but guard calls that build a payload with {!enabled} so the
    list is never allocated. *)
val emit : ?dom:int -> ?payload:payload -> cat:category -> string -> unit

(** Recorded events, oldest first. *)
val events : unit -> event list

(** Events overwritten due to ring wraparound since the last {!reset}. *)
val dropped : unit -> int

(** {1 Counters}

    Counters are interned by name at first use and live for the whole
    process; only their values react to enable/reset. Increments saturate
    at [max_int] rather than wrapping negative. *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** All registered counters as [(name, value)], sorted by name. *)
val counters : unit -> (string * int) list

(** {1 Spans}

    A span measures the virtual time between {!span} and {!finish},
    emitting paired [Begin]/[End] events and recording the duration into
    per-(name, domain) statistics. Closing is idempotent. *)

type span

val span : ?dom:int -> ?payload:payload -> cat:category -> string -> span
val finish : ?payload:payload -> span -> unit

(** [record_span_ns ~dom ~cat name dur] records a duration measured
    elsewhere (e.g. a TCP rtt probe) into the same statistics, emitting a
    single [End] event stamped now. *)
val record_span_ns : ?dom:int -> cat:category -> string -> int -> unit

type span_stat = {
  span_name : string;
  span_cat : category;
  span_dom : int;
  span_count : int;
  span_total_ns : int;
  span_min_ns : int;
  span_max_ns : int;
  span_samples : int array;
      (** the first {!max_span_samples} durations, emission order *)
}

(** Cap on retained per-span duration samples; count/total/min/max keep
    accumulating past it. *)
val max_span_samples : int

(** All span statistics, sorted by (name, dom). *)
val span_stats : unit -> span_stat list

(** {1 Export} *)

(** One event as a single-line JSON object (no trailing newline):
    [{"seq":..,"t":..,"dom":..,"cat":"..","name":"..","ph":"I|B|E",
      "depth":..,"args":{..}}]. *)
val to_json_line : event -> string

(** Write the whole trace as JSON lines: every event, then one
    [{"counter":..}] line per counter and one [{"span":..}] line per span
    statistic. Deterministic for deterministic runs. *)
val export_jsonl : out_channel -> unit
