(* Device signatures (paper §3, Fig. 2): the module types that separate
   application libraries from the device backends they run on. Protocol
   servers (`Uhttp.Server`, `Dns.Server`, `Smtp`, `Baseline.Appliances`)
   are functors over these signatures; the configure step — `Unikernel.target`
   via `Core.Appliance`/`Core.Apps` — picks the implementation: the
   type-safe unikernel netstack over a PV ring or tuntap device, or the
   `Hostnet` shim that models host-kernel sockets for the POSIX developer
   targets. Application code is identical at every target. *)

(* Canonical connection exceptions. Backends raise these (the netstack
   rebinds its historical exceptions to them), so functor bodies can match
   on [Connection_reset] without knowing which backend is underneath. *)
exception Connection_refused
exception Connection_reset

(** A byte-stream endpoint: the read/write half of an established
    connection, independent of which transport produced it. *)
module type FLOW = sig
  type flow
  type ipaddr

  (** Next chunk of the stream; [None] at end-of-stream. *)
  val read : flow -> Bytestruct.t option Mthread.Promise.t

  (** Queue bytes for transmission, blocking while the send buffer is
      full. Fails with {!Connection_reset} after a reset. *)
  val write : flow -> Bytestruct.t -> unit Mthread.Promise.t

  (** Half-close our direction. *)
  val close : flow -> unit Mthread.Promise.t

  (** Abortive close. *)
  val abort : flow -> unit

  val remote : flow -> ipaddr * int
end

(** Connection-oriented transport: listeners and active opens on top of
    {!FLOW}. *)
module type TCP = sig
  type t

  include FLOW

  (** [listen t ~port f] accepts connections on [port], spawning [f] per
      established flow. *)
  val listen : t -> port:int -> (flow -> unit Mthread.Promise.t) -> unit

  val unlisten : t -> port:int -> unit

  (** Active open. Fails with {!Connection_refused} when the peer rejects
      the connection. *)
  val connect : t -> dst:ipaddr -> dst_port:int -> flow Mthread.Promise.t
end

(** Datagram transport with per-port listeners. *)
module type UDP = sig
  type t
  type ipaddr

  type callback =
    src:ipaddr -> src_port:int -> dst_port:int -> payload:Bytestruct.t -> unit

  (** [listen t ~port f] registers [f] for datagrams to [port]; replaces
      any previous listener. *)
  val listen : t -> port:int -> callback -> unit

  val unlisten : t -> port:int -> unit

  val sendto :
    t -> src_port:int -> dst:ipaddr -> dst_port:int -> Bytestruct.t -> unit Mthread.Promise.t
end

(** A network stack bundling both transports over one address. *)
module type STACK = sig
  type t
  type ipaddr

  module Tcp : TCP with type ipaddr = ipaddr
  module Udp : UDP with type ipaddr = ipaddr

  val tcp : t -> Tcp.t
  val udp : t -> Udp.t
  val address : t -> ipaddr
end

(** Monotonic simulated time. *)
module type CLOCK = sig
  val now_ns : unit -> int
end

(** Deterministic randomness for application-level choices. *)
module type RANDOM = sig
  val int : int -> int
end

(** Buffered reading over any {!FLOW}: lines and counted blocks. The
    channel-iteratee bridge between packet streams and typed protocol
    streams (paper §3.5) that the HTTP, SMTP and memcache parsers share.
    Backend-agnostic: [create] closes over the flow's [read], so one
    reader implementation serves every transport. *)
module Reader : sig
  type t

  val create : read:(unit -> Bytestruct.t option Mthread.Promise.t) -> t

  (** Next CRLF- (or bare-LF-) terminated line, without the terminator;
      [None] at end-of-stream. *)
  val line : t -> string option Mthread.Promise.t

  (** Exactly [n] bytes; [None] if the stream ends first. *)
  val exactly : t -> int -> string option Mthread.Promise.t

  (** Like {!exactly} but also consumes a trailing CRLF (memcache framing). *)
  val block_crlf : t -> int -> string option Mthread.Promise.t

  (** Bytes buffered but not yet consumed. *)
  val buffered : t -> int

  val eof : t -> bool
end = struct
  let ( >>= ) = Mthread.Promise.bind
  let return = Mthread.Promise.return

  (* A flat byte window [start, fill): chunks are blitted in directly
     (no intermediate string), lines and blocks are found by scanning in
     place and extracted with a single [Bytes.sub_string] each — the one
     mandatory copy at the application boundary, since stack chunks may
     alias pooled driver pages that are only valid until the next read. *)
  type t = {
    read : unit -> Bytestruct.t option Mthread.Promise.t;
    mutable buf : bytes;
    mutable start : int;
    mutable fill : int;
    mutable eof : bool;
  }

  let create ~read = { read; buf = Bytes.create 4096; start = 0; fill = 0; eof = false }

  let available t = t.fill - t.start

  (* Room for [n] more bytes: slide the live region to the front first,
     and only reallocate (doubling) when the buffer is genuinely full. *)
  let reserve t n =
    if t.fill + n > Bytes.length t.buf then begin
      let live = available t in
      if live + n > Bytes.length t.buf then begin
        let cap = ref (Bytes.length t.buf * 2) in
        while live + n > !cap do
          cap := !cap * 2
        done;
        let nb = Bytes.create !cap in
        Bytes.blit t.buf t.start nb 0 live;
        t.buf <- nb
      end
      else Bytes.blit t.buf t.start t.buf 0 live;
      t.start <- 0;
      t.fill <- live
    end

  let refill t =
    t.read () >>= function
    | None ->
      t.eof <- true;
      return false
    | Some chunk ->
      let n = Bytestruct.length chunk in
      reserve t n;
      Bytestruct.blit chunk 0 (Bytestruct.of_bytes t.buf) t.fill n;
      t.fill <- t.fill + n;
      return true

  (* Consume [n] bytes, returning all but the trailing [drop]
     (terminators are consumed but never copied). *)
  let take_drop t n drop =
    let s = Bytes.sub_string t.buf t.start (n - drop) in
    t.start <- t.start + n;
    if t.start = t.fill then begin
      t.start <- 0;
      t.fill <- 0
    end;
    s

  let take t n = take_drop t n 0

  let rec line t =
    let rec find i =
      if i >= t.fill then -1 else if Bytes.unsafe_get t.buf i = '\n' then i else find (i + 1)
    in
    let i = find t.start in
    if i >= 0 then begin
      let crlf = i > t.start && Bytes.unsafe_get t.buf (i - 1) = '\r' in
      return (Some (take_drop t (i - t.start + 1) (if crlf then 2 else 1)))
    end
    else if t.eof then return None
    else refill t >>= fun ok -> if ok then line t else return None

  let rec exactly t n =
    if available t >= n then return (Some (take t n))
    else if t.eof then return None
    else refill t >>= fun ok -> if ok then exactly t n else return None

  let rec block_crlf t n =
    if available t >= n + 2 then return (Some (take_drop t (n + 2) 2))
    else if t.eof then return None
    else refill t >>= fun ok -> if ok then block_crlf t n else return None

  let buffered = available
  let eof t = t.eof
end
