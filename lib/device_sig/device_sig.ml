(* Device signatures (paper §3, Fig. 2): the module types that separate
   application libraries from the device backends they run on. Protocol
   servers (`Uhttp.Server`, `Dns.Server`, `Smtp`, `Baseline.Appliances`)
   are functors over these signatures; the configure step — `Unikernel.target`
   via `Core.Appliance`/`Core.Apps` — picks the implementation: the
   type-safe unikernel netstack over a PV ring or tuntap device, or the
   `Hostnet` shim that models host-kernel sockets for the POSIX developer
   targets. Application code is identical at every target. *)

(* Canonical connection exceptions. Backends raise these (the netstack
   rebinds its historical exceptions to them), so functor bodies can match
   on [Connection_reset] without knowing which backend is underneath. *)
exception Connection_refused
exception Connection_reset

(** A byte-stream endpoint: the read/write half of an established
    connection, independent of which transport produced it. *)
module type FLOW = sig
  type flow
  type ipaddr

  (** Next chunk of the stream; [None] at end-of-stream. *)
  val read : flow -> Bytestruct.t option Mthread.Promise.t

  (** Queue bytes for transmission, blocking while the send buffer is
      full. Fails with {!Connection_reset} after a reset. *)
  val write : flow -> Bytestruct.t -> unit Mthread.Promise.t

  (** Half-close our direction. *)
  val close : flow -> unit Mthread.Promise.t

  (** Abortive close. *)
  val abort : flow -> unit

  val remote : flow -> ipaddr * int
end

(** Connection-oriented transport: listeners and active opens on top of
    {!FLOW}. *)
module type TCP = sig
  type t

  include FLOW

  (** [listen t ~port f] accepts connections on [port], spawning [f] per
      established flow. *)
  val listen : t -> port:int -> (flow -> unit Mthread.Promise.t) -> unit

  val unlisten : t -> port:int -> unit

  (** Active open. Fails with {!Connection_refused} when the peer rejects
      the connection. *)
  val connect : t -> dst:ipaddr -> dst_port:int -> flow Mthread.Promise.t
end

(** Datagram transport with per-port listeners. *)
module type UDP = sig
  type t
  type ipaddr

  type callback =
    src:ipaddr -> src_port:int -> dst_port:int -> payload:Bytestruct.t -> unit

  (** [listen t ~port f] registers [f] for datagrams to [port]; replaces
      any previous listener. *)
  val listen : t -> port:int -> callback -> unit

  val unlisten : t -> port:int -> unit

  val sendto :
    t -> src_port:int -> dst:ipaddr -> dst_port:int -> Bytestruct.t -> unit Mthread.Promise.t
end

(** A network stack bundling both transports over one address. *)
module type STACK = sig
  type t
  type ipaddr

  module Tcp : TCP with type ipaddr = ipaddr
  module Udp : UDP with type ipaddr = ipaddr

  val tcp : t -> Tcp.t
  val udp : t -> Udp.t
  val address : t -> ipaddr
end

(** Monotonic simulated time. *)
module type CLOCK = sig
  val now_ns : unit -> int
end

(** Deterministic randomness for application-level choices. *)
module type RANDOM = sig
  val int : int -> int
end

(** Buffered reading over any {!FLOW}: lines and counted blocks. The
    channel-iteratee bridge between packet streams and typed protocol
    streams (paper §3.5) that the HTTP, SMTP and memcache parsers share.
    Backend-agnostic: [create] closes over the flow's [read], so one
    reader implementation serves every transport. *)
module Reader : sig
  type t

  val create : read:(unit -> Bytestruct.t option Mthread.Promise.t) -> t

  (** Next CRLF- (or bare-LF-) terminated line, without the terminator;
      [None] at end-of-stream. *)
  val line : t -> string option Mthread.Promise.t

  (** Exactly [n] bytes; [None] if the stream ends first. *)
  val exactly : t -> int -> string option Mthread.Promise.t

  (** Like {!exactly} but also consumes a trailing CRLF (memcache framing). *)
  val block_crlf : t -> int -> string option Mthread.Promise.t

  (** Bytes buffered but not yet consumed. *)
  val buffered : t -> int

  val eof : t -> bool
end = struct
  let ( >>= ) = Mthread.Promise.bind
  let return = Mthread.Promise.return

  type t = {
    read : unit -> Bytestruct.t option Mthread.Promise.t;
    buf : Buffer.t;
    mutable start : int;
    mutable eof : bool;
  }

  let create ~read = { read; buf = Buffer.create 256; start = 0; eof = false }

  let compact t =
    if t.start > 4096 && t.start * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.start (Buffer.length t.buf - t.start) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.start <- 0
    end

  let refill t =
    t.read () >>= function
    | None ->
      t.eof <- true;
      return false
    | Some chunk ->
      Buffer.add_string t.buf (Bytestruct.to_string chunk);
      return true

  let available t = Buffer.length t.buf - t.start

  let take t n =
    let s = Buffer.sub t.buf t.start n in
    t.start <- t.start + n;
    compact t;
    s

  let rec line t =
    let contents = Buffer.contents t.buf in
    let rec find i =
      if i >= String.length contents then None
      else if contents.[i] = '\n' then Some i
      else find (i + 1)
    in
    match find t.start with
    | Some i ->
      let raw = take t (i - t.start + 1) in
      let raw = String.sub raw 0 (String.length raw - 1) in
      let raw =
        if String.length raw > 0 && raw.[String.length raw - 1] = '\r' then
          String.sub raw 0 (String.length raw - 1)
        else raw
      in
      return (Some raw)
    | None -> if t.eof then return None else refill t >>= fun ok -> if ok then line t else return None

  let rec exactly t n =
    if available t >= n then return (Some (take t n))
    else if t.eof then return None
    else refill t >>= fun ok -> if ok then exactly t n else return None

  let block_crlf t n =
    exactly t (n + 2) >>= function
    | None -> return None
    | Some s -> return (Some (String.sub s 0 n))

  let buffered = available
  let eof t = t.eof
end
