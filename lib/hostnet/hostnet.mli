(** Host-kernel sockets for the POSIX developer targets (paper §5.4).

    The simulated netstack plays the role of the host kernel's stack,
    attached to the NIC through a direct (non-PV) {!Devices.Netif}; the
    socket API on top taxes every operation with one syscall plus a
    userspace copy of the bytes crossing the user/kernel boundary
    ([Platform.linux_native] costs). [Hostnet.Device] exposes the result
    through the {!Device_sig} contracts, so the same application functors
    that run on the unikernel netstack run here unchanged — only the
    configure step differs. *)

type t

(** [create sim ~dom ~nic config] brings up the modelled host kernel
    stack on [nic] and returns the socket layer for [dom]. *)
val create :
  Engine.Sim.t ->
  dom:Xensim.Domain.t ->
  nic:Netsim.Nic.t ->
  Netstack.Stack.ip_config ->
  t Mthread.Promise.t

(** The in-kernel stack beneath the sockets (harness access). *)
val kernel_stack : t -> Netstack.Stack.t

val netif : t -> Devices.Netif.t
val address : t -> Netstack.Ipaddr.t

(** Socket calls that crossed the user/kernel boundary. *)
val socket_ops : t -> int

(** Payload bytes copied across it. *)
val bytes_copied : t -> int

(** The socket layer under the {!Device_sig} contracts. *)
module Device : sig
  module Tcp : Device_sig.TCP with type t = t and type ipaddr = Netstack.Ipaddr.t
  module Udp : Device_sig.UDP with type t = t and type ipaddr = Netstack.Ipaddr.t

  type nonrec t = t
  type ipaddr = Netstack.Ipaddr.t

  val tcp : t -> Tcp.t
  val udp : t -> Udp.t
  val address : t -> Netstack.Ipaddr.t
end
