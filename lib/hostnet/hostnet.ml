(* Host-kernel sockets, as seen by a POSIX process (paper §5.4's first
   developer step). The application talks BSD sockets; the kernel's own
   stack does the protocol work. We model that by running the simulated
   netstack *beneath* the socket API — it plays the host kernel, attached
   to the NIC through a direct (non-PV) netif whose cost model charges
   only the kernel's per-packet work — and taxing every socket operation
   with the user/kernel boundary costs the paper's Figures 9-12 turn on:
   one syscall plus a userspace copy of the bytes crossing it, both from
   [Platform.linux_native]. *)

let ( >>= ) = Mthread.Promise.bind
let return = Mthread.Promise.return

type t = {
  sim : Engine.Sim.t;
  dom : Xensim.Domain.t;
  netif : Devices.Netif.t;
  stack : Netstack.Stack.t;
  mutable socket_ops : int;  (* syscalls crossing the boundary *)
  mutable bytes_copied : int;  (* payload bytes copied across it *)
}

(* One socket call moving [bytes_len] payload bytes between user and
   kernel space: trap cost + memcpy throughput term. *)
let tax t ~bytes_len =
  let p = t.dom.Xensim.Domain.platform in
  Platform.syscall_cost p 1 + Platform.copy_cost p ~bytes_len

let charge t ~bytes_len =
  t.socket_ops <- t.socket_ops + 1;
  t.bytes_copied <- t.bytes_copied + bytes_len;
  Xensim.Domain.charge t.dom ~cost:(tax t ~bytes_len)

let charge_k t ~bytes_len k =
  t.socket_ops <- t.socket_ops + 1;
  t.bytes_copied <- t.bytes_copied + bytes_len;
  Xensim.Domain.charge_k t.dom ~cost:(tax t ~bytes_len) k

let create sim ~dom ~nic config =
  let netif = Devices.Netif.connect_direct ~dom ~nic () in
  Netstack.Stack.create sim ~dom ~netif config >>= fun stack ->
  return { sim; dom; netif; stack; socket_ops = 0; bytes_copied = 0 }

let kernel_stack t = t.stack
let netif t = t.netif
let address t = Netstack.Stack.address t.stack
let socket_ops t = t.socket_ops
let bytes_copied t = t.bytes_copied

module Device = struct
  module Tcp = struct
    type nonrec t = t
    type flow = { host : t; fl : Netstack.Tcp.flow }
    type ipaddr = Netstack.Ipaddr.t

    let listen h ~port f =
      Netstack.Tcp.listen (Netstack.Stack.tcp h.stack) ~port (fun fl ->
          (* accept(2) before the handler sees the connection *)
          charge h ~bytes_len:0 >>= fun () -> f { host = h; fl })

    let unlisten h ~port = Netstack.Tcp.unlisten (Netstack.Stack.tcp h.stack) ~port

    let connect h ~dst ~dst_port =
      (* connect(2); the kernel then runs the handshake *)
      charge h ~bytes_len:0 >>= fun () ->
      Netstack.Tcp.connect (Netstack.Stack.tcp h.stack) ~dst ~dst_port >>= fun fl ->
      return { host = h; fl }

    let read fl =
      Netstack.Tcp.read fl.fl >>= function
      | None -> charge fl.host ~bytes_len:0 >>= fun () -> return None
      | Some chunk ->
        (* read(2) copies the chunk out of the kernel socket buffer *)
        charge fl.host ~bytes_len:(Bytestruct.length chunk) >>= fun () -> return (Some chunk)

    let write fl buf =
      (* write(2) copies into the kernel socket buffer before the stack
         sees the bytes *)
      charge fl.host ~bytes_len:(Bytestruct.length buf) >>= fun () ->
      Netstack.Tcp.write fl.fl buf

    let close fl = charge fl.host ~bytes_len:0 >>= fun () -> Netstack.Tcp.close fl.fl

    let abort fl =
      charge_k fl.host ~bytes_len:0 (fun () -> ());
      Netstack.Tcp.abort fl.fl

    let remote fl = Netstack.Tcp.remote fl.fl
  end

  module Udp = struct
    type nonrec t = t
    type ipaddr = Netstack.Ipaddr.t

    type callback =
      src:ipaddr -> src_port:int -> dst_port:int -> payload:Bytestruct.t -> unit

    let listen h ~port (f : callback) =
      Netstack.Udp.listen (Netstack.Stack.udp h.stack) ~port
        (fun ~src ~src_port ~dst_port ~payload ->
          (* recvfrom(2): the datagram is copied out of the kernel — the
             copy is real here because delivery is deferred past the
             kernel's buffer (a recycled netif page). *)
          let payload = Bytestruct.copy payload in
          charge_k h ~bytes_len:(Bytestruct.length payload) (fun () ->
              f ~src ~src_port ~dst_port ~payload))

    let unlisten h ~port = Netstack.Udp.unlisten (Netstack.Stack.udp h.stack) ~port

    let sendto h ~src_port ~dst ~dst_port payload =
      (* sendto(2) *)
      charge h ~bytes_len:(Bytestruct.length payload) >>= fun () ->
      Netstack.Udp.sendto (Netstack.Stack.udp h.stack) ~src_port ~dst ~dst_port payload
  end

  type nonrec t = t
  type ipaddr = Netstack.Ipaddr.t

  let tcp h = h
  let udp h = h
  let address = address
end
