(** HTTP/1.1 server over any {!Device_sig.TCP} transport, with keep-alive.

    [per_request_cost_ns] is charged to the appliance's vCPU per request
    served (application work: routing, handler, rendering); the default
    models the lean Mirage dynamic-web path of §4.4.

    The server is a functor over the transport signature; instantiation
    happens at configure time ([Core.Apps], per [Unikernel.target]), so
    this library never names a concrete backend. *)

type handler = Http_wire.request -> Http_wire.response Mthread.Promise.t

module Make (T : Device_sig.TCP) : sig
  type t

  (** When the metrics plane is enabled ([Trace.Metrics]), each server
      registers per-domain request/connection/error/bytes counters plus
      an [http_request_ns] latency summary; [register_metrics:false]
      opts an instance out (the /metrics exposition server uses this so
      scrape traffic does not pollute the workload's series).

      [on_request] is invoked after each response is accepted by the
      transport with the request's end-to-end service latency (parse →
      vCPU queueing → handler → render → write); the fleet scenarios hang
      windowed-percentile gauges off it without touching the cumulative
      metrics summary. *)
  val create :
    Engine.Sim.t ->
    ?dom:Xensim.Domain.t ->
    ?register_metrics:bool ->
    ?per_request_cost_ns:int ->
    ?on_request:(latency_ns:int -> unit) ->
    tcp:T.t ->
    port:int ->
    handler ->
    t

  (** A server not bound to any port: callers accept connections themselves
      and pass flows to {!handle_flow} (used by the baseline appliances,
      which gate accepts on a worker pool). *)
  val create_detached :
    Engine.Sim.t ->
    ?dom:Xensim.Domain.t ->
    ?register_metrics:bool ->
    ?per_request_cost_ns:int ->
    ?on_request:(latency_ns:int -> unit) ->
    handler ->
    t

  (** Serve one connection to completion (keep-alive loop). *)
  val handle_flow : t -> T.flow -> unit Mthread.Promise.t

  (** Convenience: serve a {!Router.t} of handlers, 404 otherwise. *)
  val of_router :
    Engine.Sim.t ->
    ?dom:Xensim.Domain.t ->
    ?register_metrics:bool ->
    ?per_request_cost_ns:int ->
    ?on_request:(latency_ns:int -> unit) ->
    tcp:T.t ->
    port:int ->
    (Http_wire.request -> Http_wire.response Mthread.Promise.t) Router.t ->
    t

  (** Graceful drain ([Core.Appliance.Handle.drain]'s server hook): close
      the listener, finish the request in flight on every connection
      byte-identically, reset connections idle between keep-alive
      requests, and resolve once no connection remains. Idempotent; a
      drained server never serves again. *)
  val drain : t -> unit Mthread.Promise.t

  val draining : t -> bool

  (** Connections currently open (serving or parked). *)
  val active_connections : t -> int

  val requests_served : t -> int
  val connections_accepted : t -> int
  val bad_requests : t -> int
  val bytes_sent : t -> int
end
