type handler = Http_wire.request -> Http_wire.response Mthread.Promise.t

(* Functor over the transport (paper §3, Fig. 2): the server speaks
   Device_sig.TCP only, so the same code serves over the unikernel
   netstack or Hostnet's host-kernel sockets — the configure step in
   Core.Apps picks the backend per Unikernel.target. *)
module Make (T : Device_sig.TCP) = struct
  type t = {
    sim : Engine.Sim.t;
    dom : Xensim.Domain.t option;
    per_request_cost_ns : int;
    handler : handler;
    mutable requests : int;
    mutable connections : int;
    mutable bad : int;
    mutable bytes_sent : int;
    m_latency : Trace.Metrics.metric;  (* http_request_ns summary *)
  }

  let ( >>= ) = Mthread.Promise.bind
  let return = Mthread.Promise.return

  let charge t =
    match t.dom with
    | None -> return ()
    | Some d ->
      Xensim.Domain.charge d
        ~cost:
          (int_of_float
             (float_of_int t.per_request_cost_ns *. d.Xensim.Domain.platform.Platform.app_factor))

  let serve_flow t flow =
    let reader = Device_sig.Reader.create ~read:(fun () -> T.read flow) in
    let rec loop () =
      Mthread.Promise.catch
        (fun () ->
          Http_wire.read_request reader >>= function
          | None -> T.close flow
          | Some req ->
            t.requests <- t.requests + 1;
            let started = Engine.Sim.now t.sim in
            (* The span opens under the causal flow of the frame that
               completed the request and closes once the response bytes are
               accepted by TCP — the application layer of the waterfall. *)
            let sp =
              if Trace.enabled () then
                Trace.span
                  ?dom:(Option.map (fun d -> d.Xensim.Domain.id) t.dom)
                  ~cat:(Trace.User "http")
                  ~payload:[ ("path", Trace.String req.Http_wire.path) ]
                  "http.request"
              else Trace.span ~cat:(Trace.User "http") "http.request"
            in
            charge t >>= fun () ->
            t.handler req >>= fun resp ->
            let ka = Http_wire.keep_alive req.Http_wire.headers in
            let resp =
              if ka then resp
              else
                {
                  resp with
                  Http_wire.resp_headers = ("Connection", "close") :: resp.Http_wire.resp_headers;
                }
            in
            let data = Bytestruct.of_string (Http_wire.render_response resp) in
            t.bytes_sent <- t.bytes_sent + Bytestruct.length data;
            T.write flow data >>= fun () ->
            Trace.finish sp;
            Trace.Metrics.observe t.m_latency (Engine.Sim.now t.sim - started);
            if ka then loop () else T.close flow)
        (function
          | Http_wire.Bad_request _ ->
            t.bad <- t.bad + 1;
            let resp = Http_wire.response ~status:400 "bad request" in
            T.write flow (Bytestruct.of_string (Http_wire.render_response resp)) >>= fun () ->
            T.close flow
          | Device_sig.Connection_reset | Mthread.Promise.Canceled -> return ()
          | e -> Mthread.Promise.fail e)
    in
    loop ()

  (* [register_metrics:false] keeps this server instance out of the
     registry — the /metrics exposition endpoint itself uses it so scrape
     traffic does not overwrite the workload server's per-domain entries. *)
  let create_detached sim ?dom ?(register_metrics = true) ?(per_request_cost_ns = 25_000) handler =
    let mid = Option.map (fun d -> d.Xensim.Domain.id) dom in
    let registered = register_metrics && Trace.Metrics.enabled () in
    let m_latency =
      if registered then Trace.Metrics.summary ?dom:mid "http_request_ns"
      else Trace.Metrics.detached
    in
    let t =
      {
        sim;
        dom;
        per_request_cost_ns;
        handler;
        requests = 0;
        connections = 0;
        bad = 0;
        bytes_sent = 0;
        m_latency;
      }
    in
    if registered then begin
      let reg name read =
        Trace.Metrics.register_read ?dom:mid ~kind:Trace.Metrics.Counter name read
      in
      reg "http_requests" (fun () -> t.requests);
      reg "http_connections" (fun () -> t.connections);
      reg "http_bad_requests" (fun () -> t.bad);
      reg "http_bytes_sent" (fun () -> t.bytes_sent)
    end;
    t

  let handle_flow t flow =
    t.connections <- t.connections + 1;
    serve_flow t flow

  let create sim ?dom ?register_metrics ?per_request_cost_ns ~tcp ~port handler =
    let t = create_detached sim ?dom ?register_metrics ?per_request_cost_ns handler in
    T.listen tcp ~port (fun flow -> handle_flow t flow);
    t

  let of_router sim ?dom ?register_metrics ?per_request_cost_ns ~tcp ~port router =
    create sim ?dom ?register_metrics ?per_request_cost_ns ~tcp ~port (fun req ->
        match Router.dispatch router req.Http_wire.meth req.Http_wire.path with
        | Some handler_result -> handler_result req
        | None -> return (Http_wire.response ~status:404 "not found"))

  let requests_served t = t.requests
  let connections_accepted t = t.connections
  let bad_requests t = t.bad
  let bytes_sent t = t.bytes_sent
end
