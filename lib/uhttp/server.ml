type handler = Http_wire.request -> Http_wire.response Mthread.Promise.t

(* Functor over the transport (paper §3, Fig. 2): the server speaks
   Device_sig.TCP only, so the same code serves over the unikernel
   netstack or Hostnet's host-kernel sockets — the configure step in
   Core.Apps picks the backend per Unikernel.target. *)
module Make (T : Device_sig.TCP) = struct
  type t = {
    sim : Engine.Sim.t;
    dom : Xensim.Domain.t option;
    per_request_cost_ns : int;
    handler : handler;
    on_request : (latency_ns:int -> unit) option;
    mutable requests : int;
    mutable connections : int;
    mutable bad : int;
    mutable bytes_sent : int;
    m_latency : Trace.Metrics.metric;  (* http_request_ns summary *)
    (* drain state: a draining server has unlistened its port, finishes
       the request in flight on each open connection byte-for-byte, then
       closes instead of continuing the keep-alive loop. *)
    mutable bound : (T.t * int) option;
    mutable active : int;  (* connections currently being served *)
    mutable flows : (T.flow * bool ref) list;  (* open connections; flag = request in flight *)
    mutable draining : bool;
    mutable drained_wakers : unit Mthread.Promise.u list;
  }

  let ( >>= ) = Mthread.Promise.bind
  let return = Mthread.Promise.return

  let charge t =
    match t.dom with
    | None -> return ()
    | Some d ->
      Xensim.Domain.charge d
        ~cost:
          (int_of_float
             (float_of_int t.per_request_cost_ns *. d.Xensim.Domain.platform.Platform.app_factor))

  let serve_flow t ~busy flow =
    let reader = Device_sig.Reader.create ~read:(fun () -> T.read flow) in
    let rec loop () =
      Mthread.Promise.catch
        (fun () ->
          Http_wire.read_request reader >>= function
          | None -> T.close flow
          | Some req ->
            busy := true;
            t.requests <- t.requests + 1;
            let started = Engine.Sim.now t.sim in
            (* The span opens under the causal flow of the frame that
               completed the request and closes once the response bytes are
               accepted by TCP — the application layer of the waterfall. *)
            let sp =
              if Trace.enabled () then
                Trace.span
                  ?dom:(Option.map (fun d -> d.Xensim.Domain.id) t.dom)
                  ~cat:(Trace.User "http")
                  ~payload:[ ("path", Trace.String req.Http_wire.path) ]
                  "http.request"
              else Trace.span ~cat:(Trace.User "http") "http.request"
            in
            let respond () =
              charge t >>= fun () ->
              t.handler req >>= fun resp ->
              let ka = Http_wire.keep_alive req.Http_wire.headers in
              let resp =
                if ka then resp
                else
                  {
                    resp with
                    Http_wire.resp_headers =
                      ("Connection", "close") :: resp.Http_wire.resp_headers;
                  }
              in
              (* App-reply hop: the synchronous render of the response is
                 the request's exclusive application allocation. *)
              let render () = Bytestruct.of_string (Http_wire.render_response resp) in
              let data =
                if Trace.Dpath.enabled () then
                  let vcpu_ns =
                    match t.dom with
                    | Some d ->
                      int_of_float
                        (float_of_int t.per_request_cost_ns
                        *. d.Xensim.Domain.platform.Platform.app_factor)
                    | None -> t.per_request_cost_ns
                  in
                  Trace.Dpath.measure Trace.Dpath.App ~vcpu_ns render
                else render ()
              in
              t.bytes_sent <- t.bytes_sent + Bytestruct.length data;
              T.write flow data >>= fun () ->
              Trace.finish sp;
              let latency_ns = Engine.Sim.now t.sim - started in
              Trace.Metrics.observe t.m_latency latency_ns;
              (match t.on_request with None -> () | Some f -> f ~latency_ns);
              busy := false;
              if ka && not t.draining then loop () else T.close flow
            in
            (* The [app] frame covers the request charge and everything the
               handler defers, via the scheduler's frame capture. *)
            if Trace.Prof.enabled () then Trace.Prof.with_frame "app" respond else respond ())
        (function
          | Http_wire.Bad_request _ ->
            t.bad <- t.bad + 1;
            let resp = Http_wire.response ~status:400 "bad request" in
            T.write flow (Bytestruct.of_string (Http_wire.render_response resp)) >>= fun () ->
            T.close flow
          | Device_sig.Connection_reset | Mthread.Promise.Canceled -> return ()
          | e -> Mthread.Promise.fail e)
    in
    loop ()

  (* [register_metrics:false] keeps this server instance out of the
     registry — the /metrics exposition endpoint itself uses it so scrape
     traffic does not overwrite the workload server's per-domain entries. *)
  let create_detached sim ?dom ?(register_metrics = true) ?(per_request_cost_ns = 25_000)
      ?on_request handler =
    let mid = Option.map (fun d -> d.Xensim.Domain.id) dom in
    let registered = register_metrics && Trace.Metrics.enabled () in
    let m_latency =
      if registered then Trace.Metrics.summary ?dom:mid "http_request_ns"
      else Trace.Metrics.detached
    in
    let t =
      {
        sim;
        dom;
        per_request_cost_ns;
        handler;
        on_request;
        requests = 0;
        connections = 0;
        bad = 0;
        bytes_sent = 0;
        m_latency;
        bound = None;
        active = 0;
        flows = [];
        draining = false;
        drained_wakers = [];
      }
    in
    if registered then begin
      let reg name read =
        Trace.Metrics.register_read ?dom:mid ~kind:Trace.Metrics.Counter name read
      in
      reg "http_requests" (fun () -> t.requests);
      reg "http_connections" (fun () -> t.connections);
      reg "http_bad_requests" (fun () -> t.bad);
      reg "http_bytes_sent" (fun () -> t.bytes_sent)
    end;
    t

  let note_idle t =
    if t.active = 0 && t.draining then begin
      let ws = t.drained_wakers in
      t.drained_wakers <- [];
      List.iter (fun w -> Mthread.Promise.wakeup w ()) ws
    end

  let handle_flow t flow =
    t.connections <- t.connections + 1;
    t.active <- t.active + 1;
    let busy = ref false in
    t.flows <- (flow, busy) :: t.flows;
    Mthread.Promise.finalize
      (fun () -> serve_flow t ~busy flow)
      (fun () ->
        t.active <- t.active - 1;
        t.flows <- List.filter (fun (f, _) -> f != flow) t.flows;
        note_idle t;
        return ())

  let create sim ?dom ?register_metrics ?per_request_cost_ns ?on_request ~tcp ~port handler =
    let t = create_detached sim ?dom ?register_metrics ?per_request_cost_ns ?on_request handler in
    t.bound <- Some (tcp, port);
    T.listen tcp ~port (fun flow -> handle_flow t flow);
    t

  let of_router sim ?dom ?register_metrics ?per_request_cost_ns ?on_request ~tcp ~port router =
    create sim ?dom ?register_metrics ?per_request_cost_ns ?on_request ~tcp ~port (fun req ->
        match Router.dispatch router req.Http_wire.meth req.Http_wire.path with
        | Some handler_result -> handler_result req
        | None -> return (Http_wire.response ~status:404 "not found"))

  (* Stop accepting (close the listener), finish every request in flight
     byte-identically, reset connections parked between keep-alive
     requests (nothing of theirs is lost; a half-sent request head is the
     client's to retry, as with any real server close race), then
     resolve. Idempotent. *)
  let drain t =
    if not t.draining then begin
      t.draining <- true;
      (match t.bound with Some (tcp, port) -> T.unlisten tcp ~port | None -> ());
      List.iter (fun (flow, busy) -> if not !busy then T.abort flow) t.flows
    end;
    if t.active = 0 then return ()
    else begin
      let p, w = Mthread.Promise.wait () in
      t.drained_wakers <- w :: t.drained_wakers;
      p
    end

  let draining t = t.draining
  let active_connections t = t.active
  let requests_served t = t.requests
  let connections_accepted t = t.connections
  let bad_requests t = t.bad
  let bytes_sent t = t.bytes_sent
end
