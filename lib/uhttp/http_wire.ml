let ( >>= ) = Mthread.Promise.bind
let return = Mthread.Promise.return
let fail = Mthread.Promise.fail

type meth = GET | POST | PUT | DELETE | HEAD

let meth_to_string = function
  | GET -> "GET"
  | POST -> "POST"
  | PUT -> "PUT"
  | DELETE -> "DELETE"
  | HEAD -> "HEAD"

let meth_of_string = function
  | "GET" -> Some GET
  | "POST" -> Some POST
  | "PUT" -> Some PUT
  | "DELETE" -> Some DELETE
  | "HEAD" -> Some HEAD
  | _ -> None

type request = {
  meth : meth;
  path : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

exception Bad_request of string

let header headers name = List.assoc_opt (String.lowercase_ascii name) headers

let keep_alive headers =
  match header headers "connection" with
  | Some v -> String.lowercase_ascii v <> "close"
  | None -> true

let reason_of_status = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 301 -> "Moved Permanently"
  | 302 -> "Found"
  | 400 -> "Bad Request"
  | 403 -> "Forbidden"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | s -> if s < 400 then "OK" else "Error"

let response ?(headers = []) ~status body =
  { status; reason = reason_of_status status; resp_headers = headers; resp_body = body }

let render_headers buf headers body_len =
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v)) headers;
  if not (List.exists (fun (k, _) -> String.lowercase_ascii k = "content-length") headers) then
    Buffer.add_string buf (Printf.sprintf "Content-Length: %d\r\n" body_len);
  Buffer.add_string buf "\r\n"

let render_request r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s %s %s\r\n" (meth_to_string r.meth) r.path r.version);
  render_headers buf r.headers (String.length r.body);
  Buffer.add_string buf r.body;
  Buffer.contents buf

let render_response r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status r.reason);
  render_headers buf r.resp_headers (String.length r.resp_body);
  Buffer.add_string buf r.resp_body;
  Buffer.contents buf

let read_headers reader =
  let rec go acc =
    Device_sig.Reader.line reader >>= function
    | None -> fail (Bad_request "eof in headers")
    | Some "" -> return (List.rev acc)
    | Some line -> (
      match String.index_opt line ':' with
      | None -> fail (Bad_request ("malformed header: " ^ line))
      | Some i ->
        let k = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
        let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        go ((k, v) :: acc))
  in
  go []

let read_body reader headers =
  match header headers "content-length" with
  | None -> return ""
  | Some l -> (
    match int_of_string_opt l with
    | None -> fail (Bad_request "bad content-length")
    | Some 0 -> return ""
    | Some n when n < 0 || n > 16 * 1024 * 1024 -> fail (Bad_request "unreasonable content-length")
    | Some n -> (
      Device_sig.Reader.exactly reader n >>= function
      | None -> fail (Bad_request "truncated body")
      | Some body -> return body))

let read_request reader =
  Device_sig.Reader.line reader >>= function
  | None -> return None
  | Some request_line -> (
    match String.split_on_char ' ' request_line with
    | [ m; path; version ] -> (
      match meth_of_string m with
      | None -> fail (Bad_request ("unknown method " ^ m))
      | Some meth ->
        read_headers reader >>= fun headers ->
        read_body reader headers >>= fun body ->
        return (Some { meth; path; version; headers; body }))
    | _ -> fail (Bad_request ("malformed request line: " ^ request_line)))

let read_response reader =
  Device_sig.Reader.line reader >>= function
  | None -> return None
  | Some status_line -> (
    match String.split_on_char ' ' status_line with
    | _http :: code :: rest -> (
      match int_of_string_opt code with
      | None -> fail (Bad_request ("malformed status line: " ^ status_line))
      | Some status ->
        read_headers reader >>= fun headers ->
        read_body reader headers >>= fun body ->
        return
          (Some
             { status; reason = String.concat " " rest; resp_headers = headers; resp_body = body }))
    | _ -> fail (Bad_request ("malformed status line: " ^ status_line)))
