type result = {
  offered_sessions : int;
  completed_sessions : int;
  replies : int;
  errors : int;
  duration_s : float;
  reply_rate : float;
}

let ( >>= ) = Mthread.Promise.bind
let return = Mthread.Promise.return

module Make (T : Device_sig.TCP) = struct
  module C = Client.Make (T)

  type session = C.t -> unit Mthread.Promise.t

  let run sim tcp ~dst ~port ~rate ~sessions ?(session_timeout_ns = Engine.Sim.sec 30) ~counter
      ~session () =
    let open Mthread.Promise in
    let interval_ns = int_of_float (1e9 /. rate) in
    let completed = ref 0 and errors = ref 0 in
    let replies_before = !counter in
    let t0 = Engine.Sim.now sim in
    let one_session () =
      catch
        (fun () ->
          with_timeout sim session_timeout_ns (fun () ->
              C.connect tcp ~dst ~port >>= fun client ->
              finalize
                (fun () -> session client >>= fun () -> return ())
                (fun () -> C.close client))
          >>= fun () ->
          incr completed;
          return ())
        (fun _ ->
          incr errors;
          return ())
    in
    let finished = ref [] in
    let rec launch i =
      if i >= sessions then return ()
      else begin
        let p = one_session () in
        finished := p :: !finished;
        sleep sim interval_ns >>= fun () -> launch (i + 1)
      end
    in
    launch 0 >>= fun () ->
    join !finished >>= fun () ->
    let duration_s = Engine.Sim.to_sec (Engine.Sim.now sim - t0) in
    let replies = !counter - replies_before in
    return
      {
        offered_sessions = sessions;
        completed_sessions = !completed;
        replies;
        errors = !errors;
        duration_s;
        reply_rate = (if duration_s > 0.0 then float_of_int replies /. duration_s else 0.0);
      }

  (* The two reply counters live outside [run] (callers pass refs into the
     session builders) because a session may count replies even when the
     session as a whole later times out — exactly httperf's behaviour. *)

  let twitter_session ~user ~counter client =
    let rec gets n =
      if n = 0 then return ()
      else
        C.get client ("/tweets/" ^ user) >>= fun resp ->
        if resp.Http_wire.status = 200 then incr counter;
        gets (n - 1)
    in
    gets 9 >>= fun () ->
    C.post client ("/tweet/" ^ user) ~body:"status=hello%20world" >>= fun resp ->
    if resp.Http_wire.status = 200 || resp.Http_wire.status = 201 then incr counter;
    return ()

  let static_session ~path ~counter client =
    C.get client path >>= fun resp ->
    if resp.Http_wire.status = 200 then incr counter;
    return ()
end
