exception Connection_closed

module Make (T : Device_sig.TCP) = struct
  type t = { flow : T.flow; reader : Device_sig.Reader.t }

  let ( >>= ) = Mthread.Promise.bind
  let return = Mthread.Promise.return
  let fail = Mthread.Promise.fail

  let connect tcp ~dst ~port =
    T.connect tcp ~dst ~dst_port:port >>= fun flow ->
    return { flow; reader = Device_sig.Reader.create ~read:(fun () -> T.read flow) }

  let request t ?(headers = []) ?(body = "") ~meth ~path () =
    let req = { Http_wire.meth; path; version = "HTTP/1.1"; headers; body } in
    T.write t.flow (Bytestruct.of_string (Http_wire.render_request req)) >>= fun () ->
    Http_wire.read_response t.reader >>= function
    | None -> fail Connection_closed
    | Some resp -> return resp

  let get t path = request t ~meth:Http_wire.GET ~path ()
  let post t path ~body = request t ~meth:Http_wire.POST ~path ~body ()
  let close t = T.close t.flow

  let get_once tcp ~dst ~port path =
    connect tcp ~dst ~port >>= fun t ->
    get t path >>= fun resp ->
    close t >>= fun () -> return resp
end
