(** HTTP/1.1 message types and (de)serialisation over a {!Device_sig.Reader}. *)

type meth = GET | POST | PUT | DELETE | HEAD

val meth_to_string : meth -> string
val meth_of_string : string -> meth option

type request = {
  meth : meth;
  path : string;
  version : string;
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val header : (string * string) list -> string -> string option

(** True unless [Connection: close] (HTTP/1.1 default keep-alive). *)
val keep_alive : (string * string) list -> bool

val reason_of_status : int -> string

(** Build a response; adds Content-Length automatically. *)
val response : ?headers:(string * string) list -> status:int -> string -> response

val render_request : request -> string
val render_response : response -> string

exception Bad_request of string

(** Read one request from the flow; [None] at a clean end-of-stream.
    @raise Bad_request (in the promise) on malformed input. *)
val read_request : Device_sig.Reader.t -> request option Mthread.Promise.t

val read_response : Device_sig.Reader.t -> response option Mthread.Promise.t
