(** HTTP/1.1 client with keep-alive connection reuse, functorized over
    the transport like {!Server}. *)

exception Connection_closed

module Make (T : Device_sig.TCP) : sig
  type t

  val connect : T.t -> dst:T.ipaddr -> port:int -> t Mthread.Promise.t

  (** One request/response on the (kept-alive) connection. *)
  val request :
    t ->
    ?headers:(string * string) list ->
    ?body:string ->
    meth:Http_wire.meth ->
    path:string ->
    unit ->
    Http_wire.response Mthread.Promise.t

  val get : t -> string -> Http_wire.response Mthread.Promise.t
  val post : t -> string -> body:string -> Http_wire.response Mthread.Promise.t
  val close : t -> unit Mthread.Promise.t

  (** One-shot convenience: connect, GET, close. *)
  val get_once : T.t -> dst:T.ipaddr -> port:int -> string -> Http_wire.response Mthread.Promise.t
end
