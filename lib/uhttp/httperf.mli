(** httperf-style workload generator (paper §4.4, Figures 12 and 13).

    Sessions arrive at a fixed rate; each opens one connection and issues
    its requests sequentially, then closes. The reply rate and error count
    over the measurement window reproduce httperf's primary metrics.

    Functorized over the transport like {!Server}; the same generator
    drives a unikernel stack or host-kernel sockets. *)

type result = {
  offered_sessions : int;
  completed_sessions : int;
  replies : int;
  errors : int;  (** connect failures / resets / timeouts *)
  duration_s : float;
  reply_rate : float;  (** replies per second of virtual time *)
}

module Make (T : Device_sig.TCP) : sig
  (** A session: given a connected client, run the requests. The
      Twitter-like workload of Figure 12 is [9 GETs + 1 POST]. *)
  type session = Client.Make(T).t -> unit Mthread.Promise.t

  (** [run sim tcp ~dst ~port ~rate ~sessions ~session ()] starts [sessions]
      sessions at [rate] per second and resolves once all have finished or
      failed. [session_timeout_ns] bounds each session (default 30 s). *)
  val run :
    Engine.Sim.t ->
    T.t ->
    dst:T.ipaddr ->
    port:int ->
    rate:float ->
    sessions:int ->
    ?session_timeout_ns:int ->
    counter:int ref ->
    session:session ->
    unit ->
    result Mthread.Promise.t

  (** The paper's dynamic-web session: 9 [GET /tweets/:user] + 1
      [POST /tweet/:user], counting replies via the returned counter. *)
  val twitter_session : user:string -> counter:int ref -> session

  (** Single static-page fetch session (Figure 13). *)
  val static_session : path:string -> counter:int ref -> session
end
