(* Prometheus-style /metrics exposition over any Device_sig.STACK.

   A sealed appliance has no shell or /proc to inspect, so the metrics
   registry (Trace.Metrics) is exported in-band: a tiny HTTP endpoint on
   the appliance's own stack renders the domain's snapshot as text, and
   the monitor appliance scrapes it over real simulated TCP — the scrape
   traffic contends with the workload exactly as production scrapes do.

   The internal Uhttp server opts out of metric registration
   ([register_metrics:false]) so the exposition path never overwrites
   the workload server's per-domain http_* series. *)

let default_port = 9100

module Make (S : Device_sig.STACK) = struct
  module Http = Server.Make (S.Tcp)

  type t = { server : Http.t; port : int }

  let mount sim ?dom ?(port = default_port) stack =
    let mid = Option.map (fun d -> d.Xensim.Domain.id) dom in
    let scrapes = Trace.Metrics.counter ?dom:mid "metrics_scrapes" in
    let handler (req : Http_wire.request) =
      match req.Http_wire.path with
      | "/metrics" ->
        Trace.Metrics.inc scrapes 1;
        Mthread.Promise.return
          (Http_wire.response
             ~headers:[ ("Content-Type", "text/plain; version=0.0.4") ]
             ~status:200
             (Trace.Metrics.to_text ?dom:mid ()))
      | _ -> Mthread.Promise.return (Http_wire.response ~status:404 "not found")
    in
    let server =
      Http.create sim ?dom ~register_metrics:false ~tcp:(S.tcp stack) ~port handler
    in
    { server; port }

  let port t = t.port
  let scrapes_served t = Http.requests_served t.server
end
