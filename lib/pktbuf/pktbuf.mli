(** Pooled, ownership-tracked packet buffers — the zero-copy datapath's
    currency (paper §5: collapsing the I/O path is the library-OS win).

    A [t] is a fixed-size buffer drawn from a per-device freelist [pool],
    with an explicit reference count. The driver that allocates a buffer
    owns one reference; every layer that needs the bytes to outlive its
    own stack frame takes another with {!retain} and gives it back with
    {!release}. When the count reaches zero the buffer returns to the
    freelist — nothing on the steady-state path allocates.

    Pool footprint is accounted through the PVBoot slab allocator
    ({!Pvboot.Slab_allocator}): each buffer is registered once when the
    pool grows, so [bytes_reserved] reports the packet-buffer arena the
    same way the boot-time allocators report theirs. Freelist recycling
    never touches the slab and never allocates.

    Ownership at each hop is documented in DESIGN.md ("Datapath buffer
    ownership"). The short version: the netfront owns RX buffers and
    publishes the current one ambiently ({!with_current}) while the
    synchronous RX chain runs; any layer that defers work over the
    payload calls {!retain_current} instead of copying; the app-facing
    boundary releases on the next read. *)

type t
type pool

exception Double_free
(** Raised by {!release} on a buffer whose count already reached zero,
    and by {!retain} on a freed buffer: both are ownership bugs. *)

(** {1 Pools} *)

(** [create_pool ~name ~buf_bytes ()] makes an empty pool of
    [buf_bytes]-sized buffers (default 2048 — one wire frame plus room).
    The pool grows on demand, [grow_batch] buffers at a time. *)
val create_pool : ?buf_bytes:int -> ?grow_batch:int -> name:string -> unit -> pool

val buf_bytes : pool -> int

(** Buffers currently sitting in the freelist. *)
val free_buffers : pool -> int

(** Buffers out of the pool with a non-zero reference count. *)
val outstanding : pool -> int

(** Arena footprint per the slab accounting (grows, never shrinks). *)
val bytes_reserved : pool -> int

(** {1 Ownership} *)

(** [alloc pool] takes a buffer off the freelist (growing the pool if
    empty) with a reference count of 1. Contents are not zeroed. *)
val alloc : pool -> t

(** [retain pb] adds a reference. @raise Double_free if [pb] is free. *)
val retain : t -> unit

(** [release pb] drops a reference; at zero the buffer returns to its
    pool's freelist. @raise Double_free if [pb] was already free. *)
val release : t -> unit

val refs : t -> int

(** {1 Views} *)

(** Full-buffer view sharing the pktbuf's storage. *)
val storage : t -> Bytestruct.t

(** [view pb ~off ~len] — a window into the buffer, sharing storage. *)
val view : t -> off:int -> len:int -> Bytestruct.t

(** {1 The ambient current packet}

    The netfront wraps the synchronous RX delivery chain in
    [with_current pb]; downstream layers that would otherwise copy a
    payload to survive a deferred callback call [retain_current] and
    keep the view instead. Outside an RX delivery [current] is [None]
    and callers fall back to copying — plain-buffer senders (tests,
    host-socket flows) keep today's semantics. *)

val with_current : t -> (unit -> 'a) -> 'a
val current : unit -> t option

(** [retain_current ()] retains and returns the ambient buffer, or
    [None] when the bytes are not pool-backed. *)
val retain_current : unit -> t option
