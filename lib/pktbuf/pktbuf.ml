exception Double_free

type pool = {
  name : string;
  buf_bytes : int;
  grow_batch : int;
  free : t Queue.t;
  slab : Pvboot.Slab_allocator.t;
  mutable total : int;  (* buffers ever created (all slab-registered) *)
}

and t = {
  pool : pool;
  storage : Bytestruct.t;
  mutable refs : int;  (* 0 = on the freelist *)
}

let c_alloc = Trace.counter "pktbuf.alloc"
let c_recycle = Trace.counter "pktbuf.recycle"
let c_grow = Trace.counter "pktbuf.grow"

let create_pool ?(buf_bytes = 2048) ?(grow_batch = 64) ~name () =
  if buf_bytes <= 0 || grow_batch <= 0 then invalid_arg "Pktbuf.create_pool";
  {
    name;
    buf_bytes;
    grow_batch;
    free = Queue.create ();
    slab = Pvboot.Slab_allocator.create ();
    total = 0;
  }

let buf_bytes p = p.buf_bytes
let free_buffers p = Queue.length p.free
let outstanding p = p.total - Queue.length p.free
let bytes_reserved p = Pvboot.Slab_allocator.bytes_reserved p.slab

(* Growth is the only allocating path: register each new buffer with the
   slab once; freelist recycling below never touches the slab. *)
let grow p =
  Trace.incr c_grow;
  for _ = 1 to p.grow_batch do
    ignore (Pvboot.Slab_allocator.alloc p.slab ~bytes:p.buf_bytes);
    p.total <- p.total + 1;
    Queue.add { pool = p; storage = Bytestruct.create p.buf_bytes; refs = 0 } p.free
  done

let alloc p =
  if Queue.is_empty p.free then grow p;
  let pb = Queue.take p.free in
  pb.refs <- 1;
  Trace.incr c_alloc;
  pb

let retain pb =
  if pb.refs <= 0 then raise Double_free;
  pb.refs <- pb.refs + 1

let release pb =
  if pb.refs <= 0 then raise Double_free;
  pb.refs <- pb.refs - 1;
  if pb.refs = 0 then begin
    Trace.incr c_recycle;
    Queue.add pb pb.pool.free
  end

let refs pb = pb.refs
let storage pb = pb.storage
let view pb ~off ~len = Bytestruct.sub pb.storage off len

let ambient : t option ref = ref None

let with_current pb f =
  let saved = !ambient in
  ambient := Some pb;
  match f () with
  | v ->
    ambient := saved;
    v
  | exception e ->
    ambient := saved;
    raise e

let current () = !ambient

let retain_current () =
  match !ambient with
  | None -> None
  | Some pb ->
    retain pb;
    Some pb
