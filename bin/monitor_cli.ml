(* mirage_sim monitor: the self-hosted monitoring plane, end to end.

   Boots N web-server appliances with /metrics mounted (one line of
   Boot_spec), a load-generating host, and the monitor unikernel, which
   discovers the fleet from the bridge's service directory and scrapes
   it over real simulated TCP. At the end of the virtual-time run it
   renders a dashboard: per-target sparklines, SLO verdicts, and the
   alert timeline. [--flap] takes one appliance's link down mid-run so
   the goodput SLO fires and resolves. *)

open Cmdliner
module P = Mthread.Promise

let ( >>= ) = P.bind

let static_ip s =
  {
    Netstack.Ipv4.address = Netstack.Ipaddr.of_string s;
    netmask = Netstack.Ipaddr.of_string "255.255.255.0";
    gateway = None;
  }

let metrics_port = 9100

(* ---- dashboard helpers ---- *)

(* Successive-delta rates (per second) of a counter series. *)
let rate_points series =
  let rec go acc = function
    | (t0, v0) :: ((t1, v1) :: _ as rest) ->
      go (if t1 > t0 then ((v1 -. v0) *. 1e9 /. float_of_int (t1 - t0)) :: acc else acc) rest
    | _ -> List.rev acc
  in
  go [] (Monitor.Series.to_list series)

let value_points series = List.map snd (Monitor.Series.to_list series)

let fmt_rate v =
  if v >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.1f" v

(* ---- the scenario ---- *)

let run_monitor seed servers duration_ms interval_ms flap trace_out =
  (if trace_out <> None then Trace.enable ~capacity:(1 lsl 18) () else Trace.enable ());
  Trace.Metrics.enable ();
  let sim = Engine.Sim.create ~seed () in
  let hv = Xensim.Hypervisor.create sim in
  let dom0 =
    Xensim.Hypervisor.create_domain hv ~name:"dom0" ~mem_mib:2048 ~platform:Platform.linux_pv ()
  in
  dom0.Xensim.Domain.state <- Xensim.Domain.Running;
  let bridge = Netsim.Bridge.create sim in
  let ts = Xensim.Toolstack.create hv in
  let duration_ns = Engine.Sim.ms duration_ms in
  let interval_ns = Engine.Sim.ms interval_ms in

  (* -- the fleet: N web appliances, each scrapable -- *)
  let router = Uhttp.Router.create () in
  Uhttp.Router.add router Uhttp.Http_wire.GET "/" (fun _ _ ->
      P.return (Uhttp.Http_wire.response ~status:200 (String.make 512 'x')));
  let boot_web i =
    let ip = Printf.sprintf "10.0.0.%d" (10 + i) in
    P.run sim
      (Core.Appliance.start hv ts
         (Core.Boot_spec.make ~backend_dom:dom0 ~bridge
            ~config:(Core.Appliance.web_server ~aslr_seed:(0x3eb + i) ())
            ~ip:(static_ip ip) ~metrics_port ())
         ~main:(fun h ->
           let dom = Core.Appliance.Handle.domain h in
           ignore
             (Core.Apps.Net.Http.of_router sim ~dom
                ~tcp:(Netstack.Stack.tcp (Core.Appliance.Handle.stack h))
                ~port:80 router);
           P.sleep sim (duration_ns * 2) >>= fun () -> P.return 0))
    |> Core.Appliance.Handle.networked
  in
  let webs = List.init servers boot_web in

  (* -- load generator: one host, an independent request loop per server
     (a faulted target must not depress the others' request rates) -- *)
  let client_dom =
    Xensim.Hypervisor.create_domain hv ~name:"loadgen" ~mem_mib:256 ~platform:Platform.xen_extent ()
  in
  client_dom.Xensim.Domain.state <- Xensim.Domain.Running;
  let client_nic =
    Netsim.Bridge.new_nic bridge ~mac:(Netsim.mac_of_int (100 + client_dom.Xensim.Domain.id)) ()
  in
  let client_netif = Devices.Netif.connect hv ~dom:client_dom ~backend_dom:dom0 ~nic:client_nic () in
  let client_stack =
    P.run sim (Netstack.Stack.create sim ~netif:client_netif (Netstack.Stack.Static (static_ip "10.0.0.9")))
  in
  let client_tcp = Netstack.Stack.tcp client_stack in
  List.iter
    (fun (n : Core.Appliance.networked) ->
      let dst = Core.Appliance.address n in
      let rec drive () =
        P.catch
          (fun () ->
            P.with_timeout sim (Engine.Sim.ms 200) (fun () ->
                Core.Apps.Net.Http_client.get_once client_tcp ~dst ~port:80 "/")
            >>= fun _ -> P.return ())
          (fun _ -> P.sleep sim (Engine.Sim.ms 5))
        >>= fun () ->
        P.sleep sim (Engine.Sim.ms 2) >>= fun () -> drive ()
      in
      P.async drive)
    webs;

  (* -- fault injection: one appliance's link flaps mid-run -- *)
  (if flap then
     match webs with
     | first :: _ ->
       let nic = Devices.Netif.nic (Core.Appliance.netif first) in
       let down_at = duration_ns * 3 / 10 and down_for = duration_ns * 3 / 10 in
       Netsim.Bridge.set_faults bridge nic
         (Netsim.Faults.make ~flap:(down_at, down_for, duration_ns * 100) ());
       Printf.printf "flap: %s link down %.0f..%.0f ms\n"
         first.Core.Appliance.unikernel.Core.Unikernel.config.Core.Config.app_name
         (Engine.Sim.to_ms down_at)
         (Engine.Sim.to_ms (down_at + down_for))
     | [] -> ());

  (* -- the monitor unikernel -- *)
  let goodput_floor = 20_000.0 (* bytes/s *) in
  let rules =
    [
      Monitor.Slo.rule "goodput-floor"
        ~source:(Monitor.Slo.Rate "http_bytes_sent")
        ~cmp:Monitor.Slo.Below ~threshold:goodput_floor
        ~for_ns:(2 * interval_ns) ~hold_ns:(2 * interval_ns);
      Monitor.Slo.rule "error-rate"
        ~source:(Monitor.Slo.Rate "http_bad_requests")
        ~cmp:Monitor.Slo.Above ~threshold:0.5
        ~for_ns:(2 * interval_ns) ~hold_ns:(2 * interval_ns);
      Monitor.Slo.rule "p99-latency"
        ~source:(Monitor.Slo.Value "http_request_ns{quantile=\"0.99\"}")
        ~cmp:Monitor.Slo.Above
        ~threshold:(float_of_int (Engine.Sim.ms 50))
        ~for_ns:(2 * interval_ns) ~hold_ns:(2 * interval_ns);
    ]
  in
  let monitor_ref = ref None in
  let _mon =
    P.run sim
      (Core.Appliance.start hv ts
         (Core.Boot_spec.make ~backend_dom:dom0 ~bridge
            ~config:(Core.Appliance.monitor_appliance ())
            ~ip:(static_ip "10.0.0.100") ())
         ~main:(fun h ->
           let dom = Core.Appliance.Handle.domain h in
           let m =
             Core.Apps.Net.Monitor.create sim ~dom:dom.Xensim.Domain.id
               ~tcp:(Netstack.Stack.tcp (Core.Appliance.Handle.stack h))
               ~interval_ns ~rules ()
           in
           List.iter
             (fun (name, ip, port) ->
               Core.Apps.Net.Monitor.add_target m ~name ~addr:(Netstack.Ipaddr.of_string ip) ~port)
             (Monitor.discover bridge);
           monitor_ref := Some m;
           Core.Apps.Net.Monitor.run m >>= fun () -> P.return 0))
  in
  let started = Engine.Sim.now sim in
  Engine.Sim.run ~until:(started + duration_ns) sim;
  let m = match !monitor_ref with Some m -> m | None -> failwith "monitor did not boot" in

  (* -- dashboard -- *)
  let width = 44 in
  Printf.printf "\n==== monitoring plane: %d targets, %d scrape rounds over %.0f ms ====\n"
    (List.length (Core.Apps.Net.Monitor.targets m))
    (Core.Apps.Net.Monitor.rounds m)
    (Engine.Sim.to_ms duration_ns);
  List.iter
    (fun tg ->
      let name = tg.Core.Apps.Net.Monitor.tg_name in
      Printf.printf "\n%s (scrapes ok %d, failed %d)\n" name tg.Core.Apps.Net.Monitor.tg_ok
        tg.Core.Apps.Net.Monitor.tg_failed;
      let spark label points unit_ =
        match points with
        | [] -> Printf.printf "  %-12s %-8s (no data)\n" label unit_
        | pts ->
          let last = List.nth pts (List.length pts - 1) in
          Printf.printf "  %-12s %-8s |%s| last %s\n" label unit_
            (Monitor.sparkline ~width pts) (fmt_rate last)
      in
      let counter_rate key =
        match Core.Apps.Net.Monitor.series tg key with Some s -> rate_points s | None -> []
      in
      let gauge_vals key =
        match Core.Apps.Net.Monitor.series tg key with Some s -> value_points s | None -> []
      in
      spark "req/s" (counter_rate "http_requests") "";
      spark "goodput" (counter_rate "http_bytes_sent") "B/s";
      spark "p99 lat" (List.map (fun v -> v /. 1e3) (gauge_vals "http_request_ns{quantile=\"0.99\"}")) "us";
      spark "vcpu run" (counter_rate "vcpu_run_ns") "ns/s";
      (* SLO verdicts for this target *)
      List.iter
        (fun (r : Monitor.Slo.rule) ->
          let fired =
            List.filter
              (fun a -> a.Monitor.al_target = name && a.Monitor.al_rule = r.Monitor.Slo.r_name)
              (Core.Apps.Net.Monitor.alerts m)
          in
          let verdict =
            match fired with
            | [] -> "OK"
            | al ->
              let open_now = List.exists (fun a -> a.Monitor.al_resolved_ns = None) al in
              Printf.sprintf "%s (%d alert%s)"
                (if open_now then "FIRING" else "fired, resolved")
                (List.length al)
                (if List.length al = 1 then "" else "s")
          in
          Printf.printf "  slo %-22s %s\n" r.Monitor.Slo.r_name verdict)
        rules)
    (Core.Apps.Net.Monitor.targets m);
  (match Core.Apps.Net.Monitor.alerts m with
  | [] -> Printf.printf "\nalert timeline: quiet (no SLO breaches)\n"
  | alerts ->
    Printf.printf "\nalert timeline:\n";
    List.iter
      (fun a ->
        Printf.printf "  [%8.1f ms] FIRE    %-22s %s\n"
          (Engine.Sim.to_ms (a.Monitor.al_fired_ns - started))
          a.Monitor.al_rule a.Monitor.al_target;
        match a.Monitor.al_resolved_ns with
        | Some t ->
          Printf.printf "  [%8.1f ms] RESOLVE %-22s %s\n"
            (Engine.Sim.to_ms (t - started))
            a.Monitor.al_rule a.Monitor.al_target
        | None -> ())
      alerts);
  (match trace_out with
  | None -> ()
  | Some file ->
    Engine.Trace_report.write_jsonl ~file;
    Printf.printf "\ntrace: %s\n" file);
  Trace.Metrics.disable ();
  Trace.Metrics.reset ();
  Trace.disable ();
  Trace.reset ()

let cmd =
  let doc = "Boot an appliance fleet plus the monitor unikernel; render the scrape dashboard" in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Simulation PRNG seed.") in
  let servers =
    Arg.(value & opt int 3 & info [ "servers" ] ~docv:"N" ~doc:"Number of web appliances to boot.")
  in
  let duration =
    Arg.(value & opt int 3000 & info [ "duration-ms" ] ~docv:"MS" ~doc:"Virtual run length.")
  in
  let interval =
    Arg.(value & opt int 100 & info [ "interval-ms" ] ~docv:"MS" ~doc:"Scrape interval.")
  in
  let flap =
    Arg.(
      value & flag
      & info [ "flap" ] ~doc:"Take one appliance's link down mid-run (fires the goodput SLO).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"Write the run's event trace to $(docv) as JSON lines.")
  in
  Cmd.v (Cmd.info "monitor" ~doc)
    Term.(const run_monitor $ seed $ servers $ duration $ interval $ flap $ trace_out)
