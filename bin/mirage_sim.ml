(* mirage_sim: command-line front end to the unikernel construction
   pipeline — list the library registry, plan/link appliances, and boot
   them on the simulated hypervisor.

     dune exec bin/mirage_sim.exe -- list
     dune exec bin/mirage_sim.exe -- build dns --dce clean --seed 7
     dune exec bin/mirage_sim.exe -- boot web --mem 128 --sync *)

open Cmdliner
module P = Mthread.Promise

let appliances =
  [
    ("dns", fun ?aslr_seed () -> Core.Appliance.dns_appliance ?aslr_seed ());
    ("web", fun ?aslr_seed () -> Core.Appliance.web_server ?aslr_seed ());
    ("of-switch", fun ?aslr_seed () -> Core.Appliance.openflow_switch ?aslr_seed ());
    ("of-controller", fun ?aslr_seed () -> Core.Appliance.openflow_controller ?aslr_seed ());
  ]

let appliance_conv =
  let parse s =
    match List.assoc_opt s appliances with
    | Some f -> Ok (s, f)
    | None ->
      Error (`Msg (Printf.sprintf "unknown appliance %s (try: %s)" s
                     (String.concat ", " (List.map fst appliances))))
  in
  Arg.conv (parse, fun fmt (s, _) -> Format.pp_print_string fmt s)

(* ---- list ---- *)

let list_cmd =
  let doc = "List the Mirage library registry (Table 1) with sizes and dependencies" in
  let run () =
    Printf.printf "%-12s %-12s %8s %9s %7s  %s\n" "subsystem" "library" "loc" "text(kB)" "unused" "deps";
    List.iter
      (fun (subsystem, names) ->
        List.iter
          (fun name ->
            let l = Core.Library_registry.find name in
            Printf.printf "%-12s %-12s %8d %9d %6.0f%%  %s\n" subsystem name
              l.Core.Library_registry.loc
              (l.Core.Library_registry.text_bytes / 1024)
              (100.0 *. l.Core.Library_registry.unused_fraction)
              (String.concat ", " l.Core.Library_registry.deps))
          names)
      (Core.Library_registry.by_subsystem ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---- build ---- *)

let target_conv =
  Arg.conv
    ( (fun s ->
        match Core.Target.of_string s with
        | Some t -> Ok t
        | None ->
          Error (`Msg ("unknown target " ^ s ^ " (posix-sockets|posix-direct|xen-direct)"))),
      fun fmt t -> Format.pp_print_string fmt (Core.Target.to_string t) )

let target_arg =
  Arg.(
    value
    & opt target_conv Core.Target.Xen_direct
    & info [ "target" ] ~docv:"TARGET"
        ~doc:
          "Backend to configure against: $(b,xen-direct) (PV ring + unikernel stack), \
           $(b,posix-direct) (tuntap + unikernel stack) or $(b,posix-sockets) (host kernel \
           sockets).")

let dce_conv =
  Arg.conv
    ( (function
      | "standard" -> Ok Core.Specialize.Standard
      | "clean" -> Ok Core.Specialize.Ocamlclean
      | s -> Error (`Msg ("unknown dce mode " ^ s ^ " (standard|clean)"))),
      fun fmt d ->
        Format.pp_print_string fmt
          (match d with Core.Specialize.Standard -> "standard" | Core.Specialize.Ocamlclean -> "clean") )

let build_cmd =
  let doc = "Specialise and link an appliance: dependency closure, DCE, compile-time ASR" in
  let appliance = Arg.(required & pos 0 (some appliance_conv) None & info [] ~docv:"APPLIANCE") in
  let dce = Arg.(value & opt dce_conv Core.Specialize.Ocamlclean & info [ "dce" ] ~docv:"MODE") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"ASR build seed") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Trace the build pipeline stages and write the events to $(docv) as JSON lines.")
  in
  let run (name, mk) dce seed target trace_out =
    if trace_out <> None then Trace.enable ();
    let staged what f =
      if Trace.enabled () then begin
        let sp = Trace.span ~cat:Trace.Boot ("build." ^ what) in
        let r = f () in
        Trace.finish sp;
        r
      end
      else f ()
    in
    let config = mk ?aslr_seed:(Some seed) () in
    (* Mirror [Unikernel.boot]: the developer targets always build with the
       stock compiler, so ocamlclean only ever applies to the Xen image. *)
    let dce_for t = match t with Core.Target.Xen_direct -> dce | _ -> Core.Specialize.Standard in
    let plan = staged "plan" (fun () -> Core.Specialize.plan ~target config (dce_for target)) in
    (match staged "verify" (fun () -> Core.Specialize.verify plan) with
    | Ok () -> ()
    | Error e ->
      Printf.eprintf "verification failed: %s\n" e;
      exit 1);
    let image = staged "link" (fun () -> Core.Linker.link plan ~seed:config.Core.Config.aslr_seed) in
    Printf.printf "appliance %s: %d libraries, %d bytes (%d kLoC active)\n" name
      (List.length plan.Core.Specialize.libs)
      plan.Core.Specialize.total_bytes (plan.Core.Specialize.total_loc / 1000);
    Printf.printf "elided: %s\n" (String.concat ", " (Core.Specialize.elided plan));
    Printf.printf "%-24s %-12s %10s %8s\n" "section" "va" "bytes" "perm";
    List.iter
      (fun (s : Core.Linker.section) ->
        Printf.printf "%-24s 0x%-10x %10d %8s\n" s.Core.Linker.sec_name s.Core.Linker.va
          s.Core.Linker.bytes
          (match s.Core.Linker.perm with
          | Xensim.Pagetable.Read_exec -> "r-x"
          | Xensim.Pagetable.Read_write -> "rw-"
          | Xensim.Pagetable.Read_only -> "r--"))
      image.Core.Linker.sections;
    Printf.printf "entry: 0x%x, clonable: %b\n" image.Core.Linker.entry_va
      (Core.Config.clonable config);
    (* The three-target comparison the workflow of §5.4 relies on: same
       configuration, per-target library closure, image size and boot
       estimate. The chosen target is starred. *)
    let mem_mib = 32 in
    Printf.printf "\ntargets (at %d MiB):\n" mem_mib;
    Printf.printf "  %-15s %5s %9s %10s\n" "target" "libs" "image kB" "boot";
    List.iter
      (fun t ->
        let p = Core.Specialize.plan ~target:t config (dce_for t) in
        (match Core.Specialize.verify p with
        | Ok () -> ()
        | Error e ->
          Printf.eprintf "verification failed for %s: %s\n" (Core.Target.to_string t) e;
          exit 1);
        let img = Core.Linker.link p ~seed:config.Core.Config.aslr_seed in
        let image_bytes =
          img.Core.Linker.total_bytes
          + (match t with Core.Target.Xen_direct -> 0 | _ -> Core.Unikernel.posix_libc_bytes)
        in
        let boot_ns = Core.Unikernel.boot_estimate_ns ~target:t ~mem_mib ~image_bytes in
        Printf.printf "  %-15s %5d %9d %7.1f ms%s\n" (Core.Target.to_string t)
          (List.length p.Core.Specialize.libs)
          (image_bytes / 1024) (Engine.Sim.to_ms boot_ns)
          (if t = target then "  *" else ""))
      Core.Target.all;
    match trace_out with
    | None -> ()
    | Some file ->
      Engine.Trace_report.write_jsonl ~file;
      Printf.printf "trace: %s\n" file;
      Engine.Trace_report.print_summary ()
  in
  Cmd.v (Cmd.info "build" ~doc) Term.(const run $ appliance $ dce $ seed $ target_arg $ trace_out)

(* ---- boot ---- *)

let boot_cmd =
  let doc = "Boot an appliance on the simulated hypervisor and report the timeline" in
  let appliance = Arg.(required & pos 0 (some appliance_conv) None & info [] ~docv:"APPLIANCE") in
  let mem = Arg.(value & opt int 64 & info [ "mem" ] ~docv:"MIB") in
  let sync = Arg.(value & flag & info [ "sync" ] ~doc:"use the stock synchronous toolstack") in
  let no_seal = Arg.(value & flag & info [ "no-seal" ] ~doc:"hypervisor without the seal patch") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record a full event trace of the boot and write it to $(docv) as JSON lines.")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "Attribute every vCPU nanosecond to its layer stack and every datapath packet to its \
             per-hop cost; write the profile to $(docv) as JSON lines (input to $(b,mirage_sim \
             profile)) and print a top-style summary.")
  in
  let flight_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"DIR"
          ~doc:
            "Arm the flight recorder: keep a bounded ring of recent events per domain and dump a \
             postmortem bundle into $(docv) on failure signals (TCP give-up, fired alerts, \
             non-zero domain exits). No bundle is written on a clean run.")
  in
  let run (name, mk) mem sync no_seal target trace_out profile_out flight_dir =
    if trace_out <> None then Trace.enable ();
    if profile_out <> None then begin
      Trace.Prof.enable ();
      Trace.Dpath.enable ()
    end;
    (match flight_dir with Some dir -> Trace.Flight.enable ~dir () | None -> ());
    let mk () = mk ?aslr_seed:None () in
    let sim = Engine.Sim.create () in
    let hv = Xensim.Hypervisor.create ~seal_patch:(not no_seal) sim in
    let dom0 =
      Xensim.Hypervisor.create_domain hv ~name:"dom0" ~mem_mib:512 ~platform:Platform.linux_pv ()
    in
    dom0.Xensim.Domain.state <- Xensim.Domain.Running;
    let ts = Xensim.Toolstack.create hv in
    let config = mk () in
    let t0 = Engine.Sim.now sim in
    let u =
      P.run sim
        (Core.Unikernel.boot hv ts
           ~mode:(if sync then `Sync else `Async)
           ~target ~config ~mem_mib:mem
           ~main:(fun _ -> P.return 0)
           ())
    in
    Engine.Sim.run sim;
    let build =
      Xensim.Toolstack.build_time_ns ~mem_mib:mem
        ~image_bytes:u.Core.Unikernel.image.Core.Linker.total_bytes
    in
    (match u.Core.Unikernel.target with
    | Core.Unikernel.Xen_direct ->
      Printf.printf "booted %s (%d MiB, %s toolstack)\n" name mem (if sync then "sync" else "async");
      Printf.printf "  domain build : %8.1f ms\n" (Engine.Sim.to_ms build);
      Printf.printf "  guest init   : %8.1f ms\n"
        (Engine.Sim.to_ms (u.Core.Unikernel.ready_at_ns - t0 - build))
    | Core.Unikernel.Posix_sockets | Core.Unikernel.Posix_direct ->
      Printf.printf "started %s as a host process (developer target)\n" name);
    Printf.printf "  total        : %8.1f ms\n" (Engine.Sim.to_ms (u.Core.Unikernel.ready_at_ns - t0));
    Printf.printf "  image        : %d kB, %d sections (ASR seed %d)\n"
      (u.Core.Unikernel.image.Core.Linker.total_bytes / 1024)
      (List.length u.Core.Unikernel.image.Core.Linker.sections)
      u.Core.Unikernel.image.Core.Linker.seed;
    Printf.printf "  sealed       : %b\n" u.Core.Unikernel.sealed;
    Printf.printf "  exit code    : %s\n"
      (match Core.Unikernel.exit_code u with Some c -> string_of_int c | None -> "running");
    (match Devices.Console.of_domain u.Core.Unikernel.domain with
    | Some console ->
      List.iter (fun line -> Printf.printf "  console      | %s\n" line)
        (Devices.Console.log console)
    | None -> ());
    (match trace_out with
    | None -> ()
    | Some file ->
      Engine.Trace_report.write_jsonl ~file;
      Printf.printf "  trace        : %s\n" file;
      Engine.Trace_report.print_summary ();
      (match Engine.Sim.vcpu_totals sim with
      | [] -> ()
      | totals ->
        Printf.printf "vcpu accounting:\n";
        Printf.printf "  %5s %10s %12s %12s\n" "dom" "slices" "run_us" "wait_us";
        List.iter
          (fun (v : Engine.Sim.vcpu_totals) ->
            Printf.printf "  %5d %10d %12.1f %12.1f\n" v.Engine.Sim.vt_dom v.Engine.Sim.vt_slices
              (float_of_int v.Engine.Sim.vt_run_ns /. 1e3)
              (float_of_int v.Engine.Sim.vt_wait_ns /. 1e3))
          totals));
    (match profile_out with
    | None -> ()
    | Some file ->
      Engine.Trace_report.write_profile ~file;
      Printf.printf "  profile      : %s\n" file;
      Engine.Trace_report.print_profile_summary ());
    if Trace.Flight.enabled () then
      Printf.printf "  flight       : %d trip(s), %d bundle(s) retained\n" (Trace.Flight.trips ())
        (List.length (Trace.Flight.bundles ()))
  in
  Cmd.v (Cmd.info "boot" ~doc)
    Term.(
      const run $ appliance $ mem $ sync $ no_seal $ target_arg $ trace_out $ profile_out
      $ flight_dir)

let main =
  let doc = "Mirage unikernel construction pipeline on a simulated Xen host" in
  Cmd.group (Cmd.info "mirage_sim" ~version:"1.0" ~doc)
    [
      list_cmd;
      build_cmd;
      boot_cmd;
      Trace_cli.cmd;
      Profile_cli.cmd;
      Monitor_cli.cmd;
      Fleet_cli.cmd;
      Pcap_cli.cmd;
      Ss_cli.cmd;
    ]

let () = exit (Cmd.eval main)
