(* mirage_sim ss: live connection introspection, `ss -tuoni` style.

   Boots the same web-server + client scenario as `mirage_sim pcap`
   (HTTP on :80, UDP echo on :53) and snapshots both stacks' socket
   tables — once mid-run while connections are in flight, once at the
   end. Each row carries what the paper's operators would get from ss
   on a Linux guest: state, queue depths, cwnd/ssthresh, srtt/rto,
   retransmit count and age. [--loss] makes the retx column move. *)

open Cmdliner
module P = Mthread.Promise

let ( >>= ) = P.bind

let static_ip s =
  {
    Netstack.Ipv4.address = Netstack.Ipaddr.of_string s;
    netmask = Netstack.Ipaddr.of_string "255.255.255.0";
    gateway = None;
  }

let run_ss seed duration_ms loss =
  Trace.enable ();
  let sim = Engine.Sim.create ~seed () in
  let hv = Xensim.Hypervisor.create sim in
  let dom0 =
    Xensim.Hypervisor.create_domain hv ~name:"dom0" ~mem_mib:2048 ~platform:Platform.linux_pv ()
  in
  dom0.Xensim.Domain.state <- Xensim.Domain.Running;
  let bridge = Netsim.Bridge.create sim in
  let ts = Xensim.Toolstack.create hv in
  let duration_ns = Engine.Sim.ms duration_ms in

  let router = Uhttp.Router.create () in
  Uhttp.Router.add router Uhttp.Http_wire.GET "/" (fun _ _ ->
      P.return (Uhttp.Http_wire.response ~status:200 (String.make 4096 'x')));
  let server =
    P.run sim
      (Core.Appliance.start hv ts
         (Core.Boot_spec.make ~backend_dom:dom0 ~bridge
            ~config:(Core.Appliance.web_server ~aslr_seed:0x55 ())
            ~ip:(static_ip "10.0.0.10") ())
         ~main:(fun h ->
           let stack = Core.Appliance.Handle.stack h in
           ignore
             (Core.Apps.Net.Http.of_router sim
                ~dom:(Core.Appliance.Handle.domain h)
                ~tcp:(Netstack.Stack.tcp stack) ~port:80 router);
           let udp = Netstack.Stack.udp stack in
           Netstack.Udp.listen udp ~port:53 (fun ~src ~src_port ~dst_port:_ ~payload ->
               P.async (fun () ->
                   Netstack.Udp.sendto udp ~src_port:53 ~dst:src ~dst_port:src_port payload));
           P.sleep sim (duration_ns * 2) >>= fun () -> P.return 0))
  in
  (if loss > 0.0 then
     let nic = Devices.Netif.nic (Core.Appliance.netif (Core.Appliance.Handle.networked server)) in
     Netsim.Bridge.set_loss bridge nic loss);

  let client_dom =
    Xensim.Hypervisor.create_domain hv ~name:"client" ~mem_mib:256 ~platform:Platform.xen_extent ()
  in
  client_dom.Xensim.Domain.state <- Xensim.Domain.Running;
  let client_nic =
    Netsim.Bridge.new_nic bridge ~mac:(Netsim.mac_of_int (200 + client_dom.Xensim.Domain.id)) ()
  in
  let client_netif = Devices.Netif.connect hv ~dom:client_dom ~backend_dom:dom0 ~nic:client_nic () in
  let client_stack =
    P.run sim
      (Netstack.Stack.create sim ~netif:client_netif (Netstack.Stack.Static (static_ip "10.0.0.9")))
  in
  let dst = Core.Appliance.Handle.address server in
  let rec http_drive () =
    P.catch
      (fun () ->
        P.with_timeout sim (Engine.Sim.ms 500) (fun () ->
            Core.Apps.Net.Http_client.get_once (Netstack.Stack.tcp client_stack) ~dst ~port:80 "/")
        >>= fun _ -> P.return ())
      (fun _ -> P.return ())
    >>= fun () ->
    P.sleep sim (Engine.Sim.ms 5) >>= fun () -> http_drive ()
  in
  P.async http_drive;
  let udp = Netstack.Stack.udp client_stack in
  Netstack.Udp.listen udp ~port:5353 (fun ~src:_ ~src_port:_ ~dst_port:_ ~payload:_ -> ());
  let rec udp_drive n =
    Netstack.Udp.sendto udp ~src_port:5353 ~dst ~dst_port:53
      (Bytestruct.of_string (Printf.sprintf "q%d" n))
    >>= fun () ->
    P.sleep sim (Engine.Sim.ms 20) >>= fun () -> udp_drive (n + 1)
  in
  P.async (fun () -> udp_drive 0);

  (* Snapshot mid-run (connections in flight) and at the end. *)
  let snapshots = Buffer.create 2048 in
  let snap label =
    Buffer.add_string snapshots
      (Printf.sprintf "---- %s (t=%.1f ms) ----\n" label
         (Engine.Sim.to_ms (Engine.Sim.now sim)));
    Buffer.add_string snapshots
      (Printf.sprintf "[server %s]\n%s"
         (Netstack.Ipaddr.to_string dst)
         (Netstack.Ss.render (Core.Appliance.Handle.stack server)));
    Buffer.add_string snapshots
      (Printf.sprintf "[client %s]\n%s\n"
         (Netstack.Ipaddr.to_string (Netstack.Stack.address client_stack))
         (Netstack.Ss.render client_stack))
  in
  P.async (fun () -> P.sleep sim (duration_ns / 2) >>= fun () -> P.return (snap "mid-run"));
  let started = Engine.Sim.now sim in
  Engine.Sim.run ~until:(started + duration_ns) sim;
  snap "end of run";
  print_string (Buffer.contents snapshots);
  Trace.disable ();
  Trace.reset ()

let cmd =
  let doc = "Boot a client/server scenario and render ss-style socket tables" in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Simulation PRNG seed.") in
  let duration =
    Arg.(value & opt int 500 & info [ "duration-ms" ] ~docv:"MS" ~doc:"Virtual run length.")
  in
  let loss =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~docv:"P"
          ~doc:"Uniform loss probability on the server link (makes retx move).")
  in
  Cmd.v (Cmd.info "ss" ~doc) Term.(const run_ss $ seed $ duration $ loss)
