(* Offline analysis of profile JSONL exports (`--profile FILE` on
   `mirage_sim boot` and `bench/main.exe`, or
   [Engine.Trace_report.write_profile]): a top-style per-domain/per-layer
   vCPU attribution table, folded-stack output feeding the same
   flamegraph.pl path as `trace flame`, and a diff mode comparing two
   profiles for before/after optimization reports.

   The profiler attributes every charged vCPU nanosecond to the ambient
   layer stack (see Trace.Prof), so per-stack run times sum to total vCPU
   time exactly and folded stacks merge by summation — which is what
   makes [diff] meaningful. *)

module J = Formats.Json

type prow = { p_dom : int; p_stack : string; p_run : int; p_wait : int; p_samples : int }
type drow = { d_hop : string; d_pkts : int; d_vcpu : int; d_alloc : float }

let parse_line line =
  if String.length (String.trim line) = 0 then `Skip
  else
    match J.parse line with
    | exception J.Parse_error (_, _) -> `Skip
    | obj -> (
      let int_of p key d =
        match J.member key p with Some (J.Number f) -> int_of_float f | _ -> d
      in
      let float_of p key d = match J.member key p with Some (J.Number f) -> f | _ -> d in
      let str_of p key d = match J.member key p with Some (J.String s) -> s | _ -> d in
      match J.member "prof" obj with
      | Some (J.Object _ as p) ->
        `Prof
          {
            p_dom = int_of p "dom" (-1);
            p_stack = str_of p "stack" "?";
            p_run = int_of p "run_ns" 0;
            p_wait = int_of p "wait_ns" 0;
            p_samples = int_of p "samples" 0;
          }
      | _ -> (
        match J.member "dpath" obj with
        | Some (J.Object _ as p) ->
          `Dpath
            {
              d_hop = str_of p "hop" "?";
              d_pkts = int_of p "pkts" 0;
              d_vcpu = int_of p "vcpu_ns" 0;
              d_alloc = float_of p "alloc_bytes" 0.;
            }
        | _ -> `Skip))

let load file =
  let ic =
    try open_in file
    with Sys_error e ->
      Printf.eprintf "%s\n" e;
      exit 1
  in
  let ps = ref [] and ds = ref [] in
  (try
     while true do
       match parse_line (input_line ic) with
       | `Prof p -> ps := p :: !ps
       | `Dpath d -> ds := d :: !ds
       | `Skip -> ()
     done
   with End_of_file -> close_in ic);
  (List.rev !ps, List.rev !ds)

let total_run ps = List.fold_left (fun a p -> a + p.p_run) 0 ps
let share total ns = if total = 0 then 0. else 100. *. float_of_int ns /. float_of_int total

(* ---- top ---- *)

let top file limit =
  let ps, ds = load file in
  if ps = [] && ds = [] then begin
    Printf.printf "no profile rows in %s (was the profiler enabled?)\n" file;
    exit 0
  end;
  let total = total_run ps in
  Printf.printf "profile: %s\n" file;
  Printf.printf "total vcpu: %.3f ms across %d stacks\n\n" (float_of_int total /. 1e6)
    (List.length ps);
  (* per-domain rollup *)
  let doms = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let run, wait =
        Option.value ~default:(0, 0) (Hashtbl.find_opt doms p.p_dom)
      in
      Hashtbl.replace doms p.p_dom (run + p.p_run, wait + p.p_wait))
    ps;
  if Hashtbl.length doms > 0 then begin
    Printf.printf "per-domain:\n  %5s %12s %7s %12s\n" "dom" "run_us" "share" "wait_us";
    Hashtbl.fold (fun dom (run, wait) acc -> (dom, run, wait) :: acc) doms []
    |> List.sort (fun (da, ra, _) (db, rb, _) -> compare (rb, da) (ra, db))
    |> List.iter (fun (dom, run, wait) ->
           Printf.printf "  %5d %12.1f %6.1f%% %12.1f\n" dom
             (float_of_int run /. 1e3)
             (share total run)
             (float_of_int wait /. 1e3));
    print_newline ()
  end;
  (* per-layer rollup: leaf frame of each stack *)
  let leaf stack =
    match String.rindex_opt stack ';' with
    | Some i -> String.sub stack (i + 1) (String.length stack - i - 1)
    | None -> stack
  in
  let layers = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let l = leaf p.p_stack in
      Hashtbl.replace layers l (p.p_run + Option.value ~default:0 (Hashtbl.find_opt layers l)))
    ps;
  if Hashtbl.length layers > 0 then begin
    Printf.printf "per-layer (leaf frame):\n  %-12s %12s %7s\n" "layer" "run_us" "share";
    Hashtbl.fold (fun l run acc -> (l, run) :: acc) layers []
    |> List.sort (fun (la, ra) (lb, rb) -> compare (rb, la) (ra, lb))
    |> List.iter (fun (l, run) ->
           Printf.printf "  %-12s %12.1f %6.1f%%\n" l (float_of_int run /. 1e3) (share total run));
    print_newline ()
  end;
  if ps <> [] then begin
    Printf.printf "per-stack (top %d by run time):\n  %-44s %5s %12s %7s %12s %9s\n" limit "stack"
      "dom" "run_us" "share" "wait_us" "samples";
    let rows =
      List.sort (fun a b -> compare (b.p_run, a.p_stack, a.p_dom) (a.p_run, b.p_stack, b.p_dom)) ps
    in
    List.iteri
      (fun i p ->
        if i < limit then
          Printf.printf "  %-44s %5d %12.1f %6.1f%% %12.1f %9d\n" p.p_stack p.p_dom
            (float_of_int p.p_run /. 1e3)
            (share total p.p_run)
            (float_of_int p.p_wait /. 1e3)
            p.p_samples)
      rows;
    print_newline ()
  end;
  if ds <> [] then begin
    Printf.printf "datapath (per packet):\n  %-10s %10s %14s %14s\n" "hop" "pkts" "vcpu-ns/pkt"
      "alloc-b/pkt";
    List.iter
      (fun d ->
        let n = float_of_int (max 1 d.d_pkts) in
        Printf.printf "  %-10s %10d %14.1f %14.1f\n" d.d_hop d.d_pkts
          (float_of_int d.d_vcpu /. n)
          (d.d_alloc /. n))
      ds
  end

(* ---- folded stacks ---- *)

let folded file =
  let ps, _ = load file in
  if ps = [] then begin
    Printf.printf "no profile rows in %s (was the profiler enabled?)\n" file;
    exit 0
  end;
  (* Same folded format as `trace flame`: [stack ns] per line, one frame
     per semicolon, so flamegraph.pl consumes either directly. The domain
     becomes the root frame. *)
  List.map
    (fun p ->
      let root = if p.p_dom < 0 then "unattributed" else Printf.sprintf "dom%d" p.p_dom in
      (Printf.sprintf "%s;%s" root p.p_stack, p.p_run))
    ps
  |> List.sort compare
  |> List.iter (fun (stack, ns) -> Printf.printf "%s %d\n" stack ns)

(* ---- diff ---- *)

let diff file_a file_b limit =
  let pa, da = load file_a in
  let pb, db = load file_b in
  let keys = Hashtbl.create 64 in
  let index ps =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun p ->
        Hashtbl.replace keys (p.p_dom, p.p_stack) ();
        Hashtbl.replace tbl (p.p_dom, p.p_stack) p)
      ps;
    tbl
  in
  let ta = index pa and tb = index pb in
  let tot_a = total_run pa and tot_b = total_run pb in
  Printf.printf "profile diff: %s -> %s\n" file_a file_b;
  Printf.printf "total vcpu: %.3f ms -> %.3f ms (%s)\n\n" (float_of_int tot_a /. 1e6)
    (float_of_int tot_b /. 1e6)
    (if tot_a = 0 then if tot_b = 0 then "+0.0%" else "new"
     else Printf.sprintf "%+.1f%%" (100. *. float_of_int (tot_b - tot_a) /. float_of_int tot_a));
  let rows =
    Hashtbl.fold
      (fun ((dom, stack) as k) () acc ->
        let run t = match Hashtbl.find_opt t k with Some p -> p.p_run | None -> 0 in
        let a = run ta and b = run tb in
        (dom, stack, a, b, b - a) :: acc)
      keys []
    |> List.sort (fun (da, sa, _, _, xa) (db, sb, _, _, xb) ->
           compare (abs xb, sa, da) (abs xa, sb, db))
  in
  Printf.printf "per-stack (top %d by |delta|):\n  %-44s %5s %12s %12s %12s %8s\n" limit "stack"
    "dom" "a_us" "b_us" "delta_us" "delta";
  List.iteri
    (fun i (dom, stack, a, b, d) ->
      if i < limit then
        let pct =
          if a = 0 then if d = 0 then "+0.0%" else "new"
          else Printf.sprintf "%+.1f%%" (100. *. float_of_int d /. float_of_int a)
        in
        Printf.printf "  %-44s %5d %12.1f %12.1f %+12.1f %8s\n" stack dom (float_of_int a /. 1e3)
          (float_of_int b /. 1e3) (float_of_int d /. 1e3) pct)
    rows;
  (* datapath per-packet deltas *)
  if da <> [] || db <> [] then begin
    let hop_tbl side = List.fold_left (fun acc d -> (d.d_hop, d) :: acc) [] side in
    let ha = hop_tbl da and hb = hop_tbl db in
    let hops =
      List.sort_uniq compare (List.map (fun d -> d.d_hop) da @ List.map (fun d -> d.d_hop) db)
    in
    Printf.printf "\ndatapath (vcpu-ns/pkt, alloc-b/pkt):\n  %-10s %14s %14s %14s %14s\n" "hop"
      "a_ns" "b_ns" "a_alloc" "b_alloc";
    List.iter
      (fun hop ->
        let per side =
          match List.assoc_opt hop side with
          | Some d when d.d_pkts > 0 ->
            let n = float_of_int d.d_pkts in
            (float_of_int d.d_vcpu /. n, d.d_alloc /. n)
          | _ -> (0., 0.)
        in
        let na, aa = per ha and nb, ab = per hb in
        Printf.printf "  %-10s %14.1f %14.1f %14.1f %14.1f\n" hop na nb aa ab)
      hops
  end

(* ---- cmdliner wiring ---- *)

open Cmdliner

let file_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
let file_b_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE_B")

let limit_arg =
  Arg.(value & opt int 30 & info [ "limit" ] ~docv:"N" ~doc:"How many rows to show.")

let top_cmd =
  let doc = "Top-style per-domain/per-layer vCPU attribution table" in
  Cmd.v (Cmd.info "top" ~doc) Term.(const top $ file_arg $ limit_arg)

let folded_cmd =
  let doc = "Folded-stack (flamegraph.pl compatible) output, vCPU ns as sample counts" in
  Cmd.v (Cmd.info "folded" ~doc) Term.(const folded $ file_arg)

let diff_cmd =
  let doc = "Compare two profiles: per-stack vCPU deltas and datapath per-packet costs" in
  Cmd.v (Cmd.info "diff" ~doc) Term.(const diff $ file_arg $ file_b_arg $ limit_arg)

let cmd =
  let doc = "Analyse a JSONL profile produced with --profile" in
  Cmd.group (Cmd.info "profile" ~doc) [ top_cmd; folded_cmd; diff_cmd ]
