(* mirage_sim pcap: wire-level packet capture on a live scenario.

   Boots a web-server appliance (HTTP on :80, a UDP echo on :53), a
   client that drives both, and a capture session — bridge-wide by
   default, or at the server's vif with [--vif] (exercising the
   device-layer capture points). The filter language is pcap-ish:
   "tcp and port 80 and flag syn". At the end of the virtual-time run
   it prints the ring as a tcpdump-style table (with the Trace.Flow id
   each frame carried, cross-referencing `mirage_sim trace waterfall`)
   and, with [--out], writes a real libpcap file plus the .flows JSONL
   sidecar. [--loss] injects uniform loss on the server link so the
   retransmit storm is visible in the capture. *)

open Cmdliner
module P = Mthread.Promise

let ( >>= ) = P.bind

let static_ip s =
  {
    Netstack.Ipv4.address = Netstack.Ipaddr.of_string s;
    netmask = Netstack.Ipaddr.of_string "255.255.255.0";
    gateway = None;
  }

let dir_str = function Netsim.Tx -> "tx" | Netsim.Rx -> "rx"

let run_pcap seed duration_ms filter_str capacity snaplen at_vif loss out =
  let filter =
    match Netsim.Capture.parse_filter filter_str with
    | Ok f -> f
    | Error e ->
      Printf.eprintf "pcap: bad filter %S: %s\n" filter_str e;
      exit 2
  in
  Trace.enable ();
  let sim = Engine.Sim.create ~seed () in
  let hv = Xensim.Hypervisor.create sim in
  let dom0 =
    Xensim.Hypervisor.create_domain hv ~name:"dom0" ~mem_mib:2048 ~platform:Platform.linux_pv ()
  in
  dom0.Xensim.Domain.state <- Xensim.Domain.Running;
  let bridge = Netsim.Bridge.create sim in
  let ts = Xensim.Toolstack.create hv in
  let duration_ns = Engine.Sim.ms duration_ms in

  let cap = Netsim.Capture.create ~name:"cap0" ~capacity ~snaplen ~filter () in
  if not at_vif then Netsim.Capture.attach_bridge cap bridge;

  (* -- server appliance: HTTP on :80, UDP echo on :53 -- *)
  let router = Uhttp.Router.create () in
  Uhttp.Router.add router Uhttp.Http_wire.GET "/" (fun _ _ ->
      P.return (Uhttp.Http_wire.response ~status:200 (String.make 1024 'x')));
  let server =
    P.run sim
      (Core.Appliance.start hv ts
         (Core.Boot_spec.make ~backend_dom:dom0 ~bridge
            ~config:(Core.Appliance.web_server ~aslr_seed:0x9ca ())
            ~ip:(static_ip "10.0.0.10") ())
         ~main:(fun h ->
           let stack = Core.Appliance.Handle.stack h in
           ignore
             (Core.Apps.Net.Http.of_router sim
                ~dom:(Core.Appliance.Handle.domain h)
                ~tcp:(Netstack.Stack.tcp stack) ~port:80 router);
           let udp = Netstack.Stack.udp stack in
           Netstack.Udp.listen udp ~port:53 (fun ~src ~src_port ~dst_port:_ ~payload ->
               P.async (fun () ->
                   Netstack.Udp.sendto udp ~src_port:53 ~dst:src ~dst_port:src_port payload));
           P.sleep sim (duration_ns * 2) >>= fun () -> P.return 0))
  in
  if at_vif then
    Devices.Netif.set_capture (Core.Appliance.netif (Core.Appliance.Handle.networked server))
      (Some cap);
  (if loss > 0.0 then
     let nic = Devices.Netif.nic (Core.Appliance.netif (Core.Appliance.Handle.networked server)) in
     Netsim.Bridge.set_loss bridge nic loss);

  (* -- client: HTTP GET loop + a UDP query loop -- *)
  let client_dom =
    Xensim.Hypervisor.create_domain hv ~name:"client" ~mem_mib:256 ~platform:Platform.xen_extent ()
  in
  client_dom.Xensim.Domain.state <- Xensim.Domain.Running;
  let client_nic =
    Netsim.Bridge.new_nic bridge ~mac:(Netsim.mac_of_int (200 + client_dom.Xensim.Domain.id)) ()
  in
  let client_netif = Devices.Netif.connect hv ~dom:client_dom ~backend_dom:dom0 ~nic:client_nic () in
  let client_stack =
    P.run sim
      (Netstack.Stack.create sim ~netif:client_netif (Netstack.Stack.Static (static_ip "10.0.0.9")))
  in
  let dst = Core.Appliance.Handle.address server in
  let rec http_drive () =
    P.catch
      (fun () ->
        P.with_timeout sim (Engine.Sim.ms 500) (fun () ->
            Core.Apps.Net.Http_client.get_once (Netstack.Stack.tcp client_stack) ~dst ~port:80 "/")
        >>= fun _ -> P.return ())
      (fun _ -> P.return ())
    >>= fun () ->
    P.sleep sim (Engine.Sim.ms 10) >>= fun () -> http_drive ()
  in
  P.async http_drive;
  let udp = Netstack.Stack.udp client_stack in
  Netstack.Udp.listen udp ~port:5353 (fun ~src:_ ~src_port:_ ~dst_port:_ ~payload:_ -> ());
  let rec udp_drive n =
    Netstack.Udp.sendto udp ~src_port:5353 ~dst ~dst_port:53
      (Bytestruct.of_string (Printf.sprintf "query-%d" n))
    >>= fun () ->
    P.sleep sim (Engine.Sim.ms 25) >>= fun () -> udp_drive (n + 1)
  in
  P.async (fun () -> udp_drive 0);

  let started = Engine.Sim.now sim in
  Engine.Sim.run ~until:(started + duration_ns) sim;

  (* -- render the ring -- *)
  Printf.printf "capture %s at %s: %d matched, %d stored, %d evicted (filter %S)\n"
    (Netsim.Capture.name cap)
    (if at_vif then "server vif" else "bridge")
    (Netsim.Capture.matched cap) (Netsim.Capture.stored cap) (Netsim.Capture.evicted cap)
    filter_str;
  Printf.printf "%5s %10s %-3s %4s %6s %5s  %s\n" "idx" "time" "dir" "link" "flow" "len" "summary";
  List.iteri
    (fun i (r : Netsim.Capture.record_info) ->
      Printf.printf "%5d %8.3fms %-3s %4d %6s %5d  %s\n" i
        (Engine.Sim.to_ms (r.Netsim.Capture.r_t - started))
        (dir_str r.Netsim.Capture.r_dir)
        r.Netsim.Capture.r_link
        (if r.Netsim.Capture.r_flow < 0 then "-" else string_of_int r.Netsim.Capture.r_flow)
        r.Netsim.Capture.r_len r.Netsim.Capture.r_summary)
    (Netsim.Capture.records cap);
  (match out with
  | None -> ()
  | Some file ->
    let oc = open_out_bin file in
    output_string oc (Netsim.Capture.to_pcap cap);
    close_out oc;
    let oc = open_out (file ^ ".flows") in
    output_string oc (Netsim.Capture.flows_json cap);
    close_out oc;
    Printf.printf "\nwrote %s (libpcap, %d packets) and %s.flows (sidecar)\n" file
      (Netsim.Capture.stored cap) file);
  Netsim.Capture.close cap;
  Trace.disable ();
  Trace.reset ()

let cmd =
  let doc = "Capture wire traffic from a live scenario into a real pcap file" in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Simulation PRNG seed.") in
  let duration =
    Arg.(value & opt int 500 & info [ "duration-ms" ] ~docv:"MS" ~doc:"Virtual run length.")
  in
  let filter =
    Arg.(
      value & opt string ""
      & info [ "filter" ] ~docv:"EXPR"
          ~doc:
            "Capture filter, e.g. 'tcp and port 80 and flag syn'. Primitives: tcp udp icmp ip \
             arp, [src|dst] host A.B.C.D, [src|dst] port N, flag syn|ack|fin|rst|psh|urg; \
             combine with and/or/not/parens. Empty matches everything.")
  in
  let capacity =
    Arg.(
      value & opt int 256
      & info [ "capacity" ] ~docv:"N" ~doc:"Ring capacity: most recent $(docv) matches are kept.")
  in
  let snaplen =
    Arg.(value & opt int 65535 & info [ "snaplen" ] ~docv:"B" ~doc:"Stored bytes per frame cap.")
  in
  let at_vif =
    Arg.(
      value & flag
      & info [ "vif" ] ~doc:"Capture at the server's vif (device layer) instead of bridge-wide.")
  in
  let loss =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~docv:"P"
          ~doc:"Uniform loss probability on the server link (provokes retransmissions).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the ring to $(docv) as libpcap plus $(docv).flows as the JSONL sidecar.")
  in
  Cmd.v (Cmd.info "pcap" ~doc)
    Term.(
      const run_pcap $ seed $ duration $ filter $ capacity $ snaplen $ at_vif $ loss $ out)
