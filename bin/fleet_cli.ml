(* `mirage_sim fleet`: run the fleet-scale serving scenario (lib/fleet) —
   an LB appliance fronting an autoscaled pool of web unikernels under an
   open-loop 100x traffic ramp — and render the control-plane story:
   scale events, a shards/rate/p99 timeline, and the latency verdict. *)

open Cmdliner

let run_fleet seed peak_rps duration_scale policy scale_to_zero trace_out =
  (if trace_out <> None then Trace.enable ~capacity:(1 lsl 18) () else Trace.enable ());
  let scale n = n * duration_scale / 100 in
  let d = Fleet.defaults in
  let p =
    {
      d with
      Fleet.seed;
      peak_rps;
      policy;
      scale_to_zero;
      warm_ns = scale d.Fleet.warm_ns;
      ramp_up_ns = scale d.Fleet.ramp_up_ns;
      hold_ns = scale d.Fleet.hold_ns;
      ramp_down_ns = scale d.Fleet.ramp_down_ns;
      tail_ns = scale d.Fleet.tail_ns;
    }
  in
  if scale_to_zero then
    Printf.printf "fleet: scale-to-zero, %.0f rps bursts with %.0f s idle gaps, policy %s, seed %d\n"
      p.Fleet.s2z_burst_rps
      (float_of_int p.Fleet.s2z_gap_ns /. 1e9)
      (Lb.Balancer.policy_name p.Fleet.policy)
      seed
  else
    Printf.printf "fleet: %.0f -> %.0f rps (%.0fx ramp), policy %s, seed %d\n"
      p.Fleet.base_rps p.Fleet.peak_rps
      (p.Fleet.peak_rps /. p.Fleet.base_rps)
      (Lb.Balancer.policy_name p.Fleet.policy)
      seed;
  let o = Fleet.run p in

  Printf.printf "\n-- scale events --\n";
  List.iter
    (fun (ev : Core.Apps.Net.Orchestrator.event) ->
      Printf.printf "  [%8.1f ms] %-9s %-8s -> %2d shards  (%s)\n"
        (Engine.Sim.to_ms ev.Core.Apps.Net.Orchestrator.ev_time_ns)
        (match ev.Core.Apps.Net.Orchestrator.ev_action with
        | Core.Apps.Net.Orchestrator.Scale_out -> "SCALE-OUT"
        | Core.Apps.Net.Orchestrator.Scale_in -> "SCALE-IN")
        ev.Core.Apps.Net.Orchestrator.ev_shard ev.Core.Apps.Net.Orchestrator.ev_shards
        ev.Core.Apps.Net.Orchestrator.ev_reason)
    o.Fleet.o_events;

  Printf.printf "\n-- timeline (0.5 s samples) --\n";
  Printf.printf "  %9s %7s %9s %9s %9s\n" "t(ms)" "shards" "rate(rps)" "p99(ms)" "in-flight";
  let every = max 1 (List.length o.Fleet.o_timeline / 24) in
  List.iteri
    (fun i (s : Fleet.sample) ->
      if i mod every = 0 then
        Printf.printf "  %9.0f %7d %9.1f %9.2f %9d\n" s.Fleet.s_ms s.Fleet.s_shards
          s.Fleet.s_rate_rps s.Fleet.s_p99_ms s.Fleet.s_in_flight)
    o.Fleet.o_timeline;

  let h = o.Fleet.o_latencies in
  Printf.printf "\n-- verdict --\n";
  Printf.printf "  requests   : %d issued, %d ok, %d errors, %d timeouts, %d refused\n"
    o.Fleet.o_issued o.Fleet.o_ok o.Fleet.o_errors o.Fleet.o_timeouts o.Fleet.o_refused;
  Printf.printf "  latency    : p50 %.2f ms, p99 %.2f ms (hold-phase p99 %.2f ms)\n"
    (Engine.Sim.to_ms (int_of_float (Trace.Hist.percentile h 50.0)))
    (Engine.Sim.to_ms (int_of_float (Trace.Hist.percentile h 99.0)))
    (Engine.Sim.to_ms (int_of_float o.Fleet.o_hold_p99_ns));
  Printf.printf "  fleet      : %d scale-outs, %d scale-ins, peak %d shards, final %d\n"
    o.Fleet.o_scale_outs o.Fleet.o_scale_ins o.Fleet.o_peak_shards o.Fleet.o_final_shards;
  Printf.printf "  population : ~%d simulated users at peak (Little's law)\n"
    o.Fleet.o_peak_population;
  if scale_to_zero then
    Printf.printf "  cold start : %d boots from zero, %d flows parked, longest park %.2f ms\n"
      o.Fleet.o_cold_starts o.Fleet.o_held
      (Engine.Sim.to_ms o.Fleet.o_held_wait_max_ns);
  Printf.printf "  domains    : %d left in the hypervisor table (retired shards are gone)\n"
    o.Fleet.o_domains_left;

  (match trace_out with
  | None -> ()
  | Some file ->
    Engine.Trace_report.write_jsonl ~file;
    Printf.printf "\ntrace: %s\n" file);
  Trace.Metrics.disable ();
  Trace.Metrics.reset ();
  Trace.disable ();
  Trace.reset ()

let policy_conv =
  let parse = function
    | "hash" -> Ok Lb.Balancer.Hash
    | "least-conns" -> Ok Lb.Balancer.Least_conns
    | s -> Error (`Msg (Printf.sprintf "unknown policy %s (hash|least-conns)" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Lb.Balancer.policy_name p))

let cmd =
  let doc = "Run the fleet: LB + autoscaled web shards under a 100x open-loop traffic ramp" in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Simulation PRNG seed.") in
  let peak =
    Arg.(value & opt float 500.0 & info [ "peak-rps" ] ~docv:"RPS" ~doc:"Peak arrival rate.")
  in
  let duration =
    Arg.(
      value & opt int 100
      & info [ "duration-pct" ] ~docv:"PCT"
          ~doc:"Scale every schedule phase to $(docv)%% of the default 85 s run.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Lb.Balancer.Least_conns
      & info [ "policy" ] ~docv:"POLICY" ~doc:"Balancing policy: hash or least-conns.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"Write the run's event trace to $(docv) as JSON lines.")
  in
  let scale_to_zero =
    Arg.(
      value & flag
      & info [ "scale-to-zero" ]
          ~doc:
            "Replace the ramp with idle/burst cycles: the fleet starts at zero shards, the LB \
             parks the first request of each burst while the orchestrator boots from zero, and \
             idle gaps reap the pool back to zero.")
  in
  Cmd.v (Cmd.info "fleet" ~doc)
    Term.(const run_fleet $ seed $ peak $ duration $ policy $ scale_to_zero $ trace_out)
