(* Offline analysis of trace JSONL exports (`--trace FILE` on
   `mirage_sim boot/build` and `bench/main.exe`): per-flow latency
   waterfalls, per-layer attribution tables, folded-stack flamegraph
   output and queue-depth timelines.

   Attribution model: each flow's events are rebuilt into intervals.
   Paired Begin/End events and retro spans (End with a dur_ns argument
   and no matching Begin) that describe protocol work — netif.rx,
   tcp.rx, dns.query, http.request, ... — are "layer" intervals; the
   vcpu.wait / vcpu.run retro spans emitted by the domain scheduler are
   background intervals. Sweeping the flow's window over elementary
   slices, each slice is charged to the innermost covering layer
   interval (latest start wins), else to vcpu.run (processing) or
   vcpu.wait (queueing), else to idle/wire. The per-layer sums
   therefore partition the flow's end-to-end latency exactly. *)

module J = Formats.Json

type ev = {
  e_seq : int;
  e_t : int;
  e_dom : int;
  e_cat : string;
  e_name : string;
  e_ph : string;
  e_flow : int;
  e_args : (string * J.t) list;
}

type interval = {
  i_lo : int;
  i_hi : int;
  i_name : string;
  i_cat : string;
  i_dom : int;
}

let num_arg e key =
  match List.assoc_opt key e.e_args with Some (J.Number f) -> Some (int_of_float f) | _ -> None

let parse_line line =
  if String.length (String.trim line) = 0 then None
  else
    match J.parse line with
    | exception J.Parse_error (_, _) -> None
    | J.Object fields as obj -> (
      match J.member "seq" obj with
      | Some (J.Number seq) ->
        let int_of key d = match J.member key obj with Some (J.Number f) -> int_of_float f | _ -> d in
        let str_of key d = match J.member key obj with Some (J.String s) -> s | _ -> d in
        let args =
          match J.member "args" obj with Some (J.Object kvs) -> kvs | _ -> []
        in
        ignore fields;
        Some
          {
            e_seq = int_of_float seq;
            e_t = int_of "t" 0;
            e_dom = int_of "dom" (-1);
            e_cat = str_of "cat" "?";
            e_name = str_of "name" "?";
            e_ph = str_of "ph" "I";
            e_flow = int_of "flow" (-1);
            e_args = args;
          }
      | _ -> None (* counter / span summary lines *))
    | _ -> None

let load file =
  let ic = try open_in file with Sys_error e -> Printf.eprintf "%s\n" e; exit 1 in
  let evs = ref [] in
  (try
     while true do
       match parse_line (input_line ic) with
       | Some e -> evs := e :: !evs
       | None -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !evs

(* flow id -> events sorted by (time, seq) *)
let flows_of evs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.e_flow >= 0 then
        Hashtbl.replace tbl e.e_flow (e :: (Option.value ~default:[] (Hashtbl.find_opt tbl e.e_flow))))
    evs;
  Hashtbl.fold
    (fun fl l acc ->
      (fl, List.sort (fun a b -> compare (a.e_t, a.e_seq) (b.e_t, b.e_seq)) l) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Rebuild intervals from one flow's event list: B/E pairing per
   (dom, name) with a stack; an unmatched End is a retro span covering
   [end - dur_ns, end], where end is the event timestamp minus the
   lag_ns argument when present (vcpu.wait places its interval back at
   the enqueue-to-dispatch gap). *)
let intervals_of evs =
  let open_spans = Hashtbl.create 16 in
  let acc = ref [] in
  List.iter
    (fun e ->
      match e.e_ph with
      | "B" -> Hashtbl.add open_spans (e.e_dom, e.e_name) e.e_t
      | "E" -> (
        let key = (e.e_dom, e.e_name) in
        match Hashtbl.find_opt open_spans key with
        | Some t0 ->
          Hashtbl.remove open_spans key;
          acc := { i_lo = t0; i_hi = e.e_t; i_name = e.e_name; i_cat = e.e_cat; i_dom = e.e_dom } :: !acc
        | None ->
          let dur = Option.value ~default:0 (num_arg e "dur_ns") in
          let hi = e.e_t - Option.value ~default:0 (num_arg e "lag_ns") in
          acc :=
            { i_lo = hi - dur; i_hi = hi; i_name = e.e_name; i_cat = e.e_cat; i_dom = e.e_dom }
            :: !acc)
      | _ -> ())
    evs;
  List.rev !acc

let is_vcpu i = String.length i.i_name >= 5 && String.sub i.i_name 0 5 = "vcpu."

let window evs intervals =
  let lo = ref max_int and hi = ref min_int in
  List.iter
    (fun e ->
      if e.e_t < !lo then lo := e.e_t;
      if e.e_t > !hi then hi := e.e_t)
    evs;
  List.iter
    (fun i ->
      if i.i_lo < !lo then lo := i.i_lo;
      if i.i_hi > !hi then hi := i.i_hi)
    intervals;
  if !lo > !hi then (0, 0) else (!lo, !hi)

(* Sweep the window's elementary slices; return (layer, ns) tallies.
   The tallies partition [lo, hi] exactly. *)
let attribute intervals ~lo ~hi =
  let module IS = Set.Make (Int) in
  let pts =
    List.fold_left
      (fun s i -> IS.add (max lo (min hi i.i_lo)) (IS.add (max lo (min hi i.i_hi)) s))
      (IS.add lo (IS.add hi IS.empty))
      intervals
    |> IS.elements
  in
  let tally = Hashtbl.create 16 in
  let add layer ns =
    Hashtbl.replace tally layer (ns + Option.value ~default:0 (Hashtbl.find_opt tally layer))
  in
  let rec sweep = function
    | a :: (b :: _ as rest) ->
      if b > a then begin
        let covering = List.filter (fun i -> i.i_lo <= a && i.i_hi >= b) intervals in
        let layers = List.filter (fun i -> not (is_vcpu i)) covering in
        (match layers with
        | _ :: _ ->
          (* innermost: latest start; break ties by name for determinism *)
          let innermost =
            List.fold_left
              (fun best i -> if (i.i_lo, i.i_name) > (best.i_lo, best.i_name) then i else best)
              (List.hd layers) (List.tl layers)
          in
          add innermost.i_name (b - a)
        | [] ->
          if List.exists (fun i -> i.i_name = "vcpu.run") covering then add "vcpu.run" (b - a)
          else if List.exists (fun i -> i.i_name = "vcpu.wait") covering then add "vcpu.wait" (b - a)
          else add "idle/wire" (b - a))
      end;
      sweep rest
    | _ -> ()
  in
  sweep pts;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [] |> List.sort compare

(* ---- report ---- *)

let pct h p = Trace.Hist.percentile h p

let report file max_flows =
  let evs = load file in
  let flows = flows_of evs in
  if flows = [] then begin
    Printf.printf "no flow-tagged events in %s (was tracing enabled?)\n" file;
    exit 0
  end;
  let analysed =
    List.map
      (fun (fl, evs) ->
        let ivs = intervals_of evs in
        let lo, hi = window evs ivs in
        (fl, evs, ivs, lo, hi, attribute ivs ~lo ~hi))
      flows
  in
  (* aggregate per layer: total ns and a histogram of per-flow values *)
  let layer_tbl = Hashtbl.create 16 in
  let grand_total = ref 0 in
  let worst_err = ref 0.0 in
  List.iter
    (fun (_, _, _, lo, hi, tallies) ->
      let e2e = hi - lo in
      let sum = List.fold_left (fun a (_, ns) -> a + ns) 0 tallies in
      if e2e > 0 then
        worst_err := Float.max !worst_err (Float.abs (float_of_int (sum - e2e) /. float_of_int e2e));
      grand_total := !grand_total + e2e;
      List.iter
        (fun (layer, ns) ->
          let tot, h =
            match Hashtbl.find_opt layer_tbl layer with
            | Some x -> x
            | None ->
              let x = (ref 0, Trace.Hist.create ()) in
              Hashtbl.add layer_tbl layer x;
              x
          in
          tot := !tot + ns;
          Trace.Hist.record h ns)
        tallies)
    analysed;
  Printf.printf "trace: %s\n" file;
  Printf.printf "flows: %d   total traced latency: %.3f ms   worst flow sum error: %.4f%%\n\n"
    (List.length flows)
    (float_of_int !grand_total /. 1e6)
    (100.0 *. !worst_err);
  Printf.printf "per-layer breakdown (all flows):\n";
  Printf.printf "  %-18s %7s %9s %6s %10s %10s %10s\n" "layer" "flows" "total_us" "share" "p50_ns"
    "p95_ns" "p99_ns";
  let rows =
    Hashtbl.fold (fun layer (tot, h) acc -> (layer, !tot, h) :: acc) layer_tbl []
    |> List.sort (fun (na, ta, _) (nb, tb, _) -> compare (tb, na) (ta, nb))
  in
  List.iter
    (fun (layer, tot, h) ->
      Printf.printf "  %-18s %7d %9.1f %5.1f%% %10.0f %10.0f %10.0f\n" layer (Trace.Hist.count h)
        (float_of_int tot /. 1e3)
        (100.0 *. float_of_int tot /. float_of_int (max 1 !grand_total))
        (pct h 50.) (pct h 95.) (pct h 99.))
    rows;
  (* per-flow detail for the longest flows *)
  let by_dur =
    List.sort
      (fun (fa, _, _, la, ha, _) (fb, _, _, lb, hb, _) -> compare (hb - lb, fa) (ha - la, fb))
      analysed
  in
  let shown = ref 0 in
  Printf.printf "\nslowest flows (showing up to %d):\n" max_flows;
  List.iter
    (fun (fl, _, _, lo, hi, tallies) ->
      if !shown < max_flows then begin
        incr shown;
        let e2e = hi - lo in
        let sum = List.fold_left (fun a (_, ns) -> a + ns) 0 tallies in
        Printf.printf "  flow %-5d end-to-end %8d ns  (layer sum %8d ns)\n" fl e2e sum;
        List.iter
          (fun (layer, ns) ->
            Printf.printf "    %-18s %8d ns %5.1f%%\n" layer ns
              (100.0 *. float_of_int ns /. float_of_int (max 1 e2e)))
          (List.sort (fun (na, a) (nb, b) -> compare (b, na) (a, nb)) tallies)
      end)
    by_dur

(* ---- waterfall ---- *)

let waterfall file max_flows =
  let evs = load file in
  let flows = flows_of evs in
  if flows = [] then begin
    Printf.printf "no flow-tagged events in %s (was tracing enabled?)\n" file;
    exit 0
  end;
  let width = 56 in
  let shown = ref 0 in
  List.iter
    (fun (fl, evs) ->
      if !shown < max_flows then begin
        incr shown;
        let ivs = intervals_of evs in
        let lo, hi = window evs ivs in
        let span = max 1 (hi - lo) in
        Printf.printf "flow %d: %d ns (t=%d..%d)\n" fl (hi - lo) lo hi;
        let ivs = List.sort (fun a b -> compare (a.i_lo, a.i_hi, a.i_name) (b.i_lo, b.i_hi, b.i_name)) ivs in
        List.iter
          (fun i ->
            let c0 = (i.i_lo - lo) * width / span in
            let c1 = max (c0 + 1) ((i.i_hi - lo) * width / span) in
            let c1 = min c1 width in
            let bar =
              String.concat ""
                [ String.make c0 ' '; String.make (c1 - c0) '#'; String.make (width - c1) ' ' ]
            in
            Printf.printf "  %-18s d%-2d |%s| %8d ns\n" i.i_name i.i_dom bar (i.i_hi - i.i_lo))
          ivs;
        print_newline ()
      end)
    flows

(* ---- flamegraph (folded stacks) ---- *)

let flame file =
  let evs = load file in
  let flows = flows_of evs in
  let stacks = Hashtbl.create 64 in
  let add stack ns =
    Hashtbl.replace stacks stack (ns + Option.value ~default:0 (Hashtbl.find_opt stacks stack))
  in
  List.iter
    (fun (_, evs) ->
      let ivs = intervals_of evs in
      let lo, hi = window evs ivs in
      let module IS = Set.Make (Int) in
      let pts =
        List.fold_left
          (fun s i -> IS.add (max lo (min hi i.i_lo)) (IS.add (max lo (min hi i.i_hi)) s))
          (IS.add lo (IS.add hi IS.empty))
          ivs
        |> IS.elements
      in
      let rec sweep = function
        | a :: (b :: _ as rest) ->
          if b > a then begin
            let covering = List.filter (fun i -> i.i_lo <= a && i.i_hi >= b) ivs in
            let layers =
              List.filter (fun i -> not (is_vcpu i)) covering
              |> List.sort (fun x y -> compare (x.i_lo, -x.i_hi, x.i_name) (y.i_lo, -y.i_hi, y.i_name))
            in
            let frames = List.map (fun i -> i.i_name) layers in
            let frames =
              if List.exists (fun i -> i.i_name = "vcpu.run") covering then frames @ [ "vcpu.run" ]
              else if List.exists (fun i -> i.i_name = "vcpu.wait") covering then
                frames @ [ "vcpu.wait" ]
              else if frames = [] then [ "idle/wire" ]
              else frames
            in
            add (String.concat ";" ("flow" :: frames)) (b - a)
          end;
          sweep rest
        | _ -> ()
      in
      sweep pts)
    flows;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) stacks []
  |> List.sort compare
  |> List.iter (fun (stack, ns) -> Printf.printf "%s %d\n" stack ns)

(* ---- queue-depth timelines ---- *)

let queues file buckets =
  let evs = load file in
  let samples =
    List.filter_map
      (fun e ->
        match (num_arg e "pending", num_arg e "qlen") with
        | Some v, _ | _, Some v -> Some (e.e_name, e.e_t, v)
        | None, None -> None)
      evs
  in
  if samples = [] then begin
    Printf.printf "no queue-depth samples in %s\n" file;
    exit 0
  end;
  let lo = List.fold_left (fun a (_, t, _) -> min a t) max_int samples in
  let hi = List.fold_left (fun a (_, t, _) -> max a t) min_int samples in
  let span = max 1 (hi - lo) in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (name, t, v) ->
      let arr =
        match Hashtbl.find_opt tbl name with
        | Some a -> a
        | None ->
          let a = Array.make buckets 0 in
          Hashtbl.add tbl name a;
          a
      in
      let b = min (buckets - 1) ((t - lo) * buckets / span) in
      arr.(b) <- max arr.(b) v)
    samples;
  let glyphs = " .:-=+*#%@" in
  Printf.printf "queue depth (max per bucket), t=%d..%d ns, %d buckets:\n" lo hi buckets;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare
  |> List.iter (fun (name, arr) ->
         let vmax = Array.fold_left max 1 arr in
         let line =
           String.init buckets (fun i ->
               glyphs.[min (String.length glyphs - 1) (arr.(i) * (String.length glyphs - 1) / vmax)])
         in
         Printf.printf "  %-18s max %4d |%s|\n" name vmax line)

(* ---- cmdliner wiring ---- *)

open Cmdliner

let file_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")

let flows_arg =
  Arg.(value & opt int 5 & info [ "flows" ] ~docv:"N" ~doc:"How many flows to detail.")

let report_cmd =
  let doc = "Per-flow, per-layer latency attribution from a trace export" in
  Cmd.v (Cmd.info "report" ~doc) Term.(const report $ file_arg $ flows_arg)

let waterfall_cmd =
  let doc = "ASCII waterfall of each flow's spans on the virtual timeline" in
  Cmd.v (Cmd.info "waterfall" ~doc) Term.(const waterfall $ file_arg $ flows_arg)

let flame_cmd =
  let doc = "Folded-stack (flamegraph.pl compatible) output, ns as sample counts" in
  Cmd.v (Cmd.info "flame" ~doc) Term.(const flame $ file_arg)

let queues_cmd =
  let doc = "Queue-depth timelines from dispatch/buffer samples" in
  let buckets = Arg.(value & opt int 60 & info [ "buckets" ] ~docv:"N") in
  Cmd.v (Cmd.info "queues" ~doc) Term.(const queues $ file_arg $ buckets)

let cmd =
  let doc = "Analyse a JSONL trace produced with --trace" in
  Cmd.group (Cmd.info "trace" ~doc) [ report_cmd; waterfall_cmd; flame_cmd; queues_cmd ]
