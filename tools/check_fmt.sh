#!/bin/sh
# Formatting gate, run from anywhere inside the repo.
#
# dune's @fmt alias only covers dune files here ((formatting (enabled_for
# dune)) in dune-project); this script extends the gate to OCaml sources
# with the ocamlformat version pinned in .ocamlformat. Machines without
# that exact ocamlformat (the CI base image has none) still get the dune
# gate and skip the source check with a warning instead of failing, so
# the tree stays buildable everywhere while drift fails on any machine
# that can actually check it.
set -eu
cd "$(git rev-parse --show-toplevel)"

dune build @fmt

if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "check_fmt: ocamlformat not installed; OCaml source check skipped" >&2
  exit 0
fi

pinned=$(sed -n 's/^version *= *//p' .ocamlformat)
installed=$(ocamlformat --version)
if [ -n "$pinned" ] && [ "$installed" != "$pinned" ]; then
  echo "check_fmt: ocamlformat $installed != pinned $pinned; OCaml source check skipped" >&2
  exit 0
fi

status=0
for f in $(git ls-files '*.ml' '*.mli'); do
  if ! ocamlformat --check "$f" 2>/dev/null; then
    echo "check_fmt: $f needs reformatting (ocamlformat $pinned)" >&2
    status=1
  fi
done
[ "$status" -eq 0 ] && echo "check_fmt: OK"
exit $status
