#!/bin/sh
# The whole CI gate in one command, run from anywhere inside the repo:
#
#   tools/ci.sh            build + tests + formatting + virtual-time bench gate
#   CI_FULL=1 tools/ci.sh  also re-measures the fleet scenario (slower)
#
# Stages:
#   1. dune build           — the tree compiles
#   2. dune runtest         — unit/golden tests plus the trace, monitor,
#                             profiler and capture guards (disabled-site
#                             budgets, figure-8 invariance)
#   3. tools/check_fmt.sh   — dune + ocamlformat formatting gate
#   4. tools/bench_gate.sh  — fresh `bench --out` run of the deterministic
#                             virtual-time experiments (dpath, bootstorm,
#                             capture) against the committed BENCH_micro.json
#                             snapshot; every gated metric prints its
#                             delta even on pass
set -eu
cd "$(git rev-parse --show-toplevel)"

echo "== ci: dune build =="
dune build

echo "== ci: dune runtest =="
dune runtest

echo "== ci: formatting =="
tools/check_fmt.sh

echo "== ci: bench gate (virtual-time metrics) =="
out=$(mktemp /tmp/ci-bench-XXXXXX.json)
trap 'rm -f "$out"' EXIT
dune exec bench/main.exe -- dpath bootstorm capture --out "$out" >/dev/null
tools/bench_gate.sh BENCH_micro.json "$out"

if [ "${CI_FULL:-0}" = 1 ]; then
  echo "== ci: bench gate (fleet scenario) =="
  dune exec bench/main.exe -- fleet --out "$out" >/dev/null
  tools/bench_gate.sh BENCH_fleet.json "$out"
fi

echo "== ci: OK =="
