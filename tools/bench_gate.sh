#!/bin/sh
# Regression gate over `bench --out` JSON-lines snapshots.
#
# Compares a freshly measured run against a committed baseline and fails
# (exit 1) when any named metric regresses by more than the tolerance
# (default 20%, override with BENCH_GATE_TOLERANCE=0.30 etc.).
#
# Usage:
#   tools/bench_gate.sh BASELINE.json CURRENT.json [SPEC...]
#
#   SPEC = figure:metric:direction
#     direction 'lower'  — lower is better; fail when current > baseline*(1+tol)
#     direction 'higher' — higher is better; fail when current < baseline*(1-tol)
#
# With no SPECs the default set below gates the fleet scenario's
# deterministic virtual-time metrics. Wall-clock metrics (the 'micro'
# figure) are machine-dependent: snapshot them for reference, but only
# gate them explicitly, on hardware you control, e.g.
#
#   dune exec bench/main.exe -- fleet --out /tmp/now.json
#   tools/bench_gate.sh BENCH_fleet.json /tmp/now.json
#
set -u

if [ $# -lt 2 ]; then
  sed -n '2,21p' "$0" | sed 's/^# \{0,1\}//'
  exit 2
fi

baseline=$1
current=$2
shift 2

tol=${BENCH_GATE_TOLERANCE:-0.20}

if [ ! -f "$baseline" ]; then
  echo "bench_gate: baseline $baseline not found" >&2
  exit 2
fi
if [ ! -f "$current" ]; then
  echo "bench_gate: current $current not found" >&2
  exit 2
fi

# Default gate: the fleet scenario and the boot storm run in simulated
# virtual time, so on any machine these numbers depend only on the seed.
# A >20% drift means the behaviour changed, not the hardware. (The
# storm's wall-clock metric is deliberately absent here.)
#
# Default specs are skipped, not failed, when the baseline predates the
# metric — so one spec list gates both BENCH_fleet.json and
# BENCH_micro.json snapshots. Explicitly requested specs still fail
# hard on a missing metric.
default_specs=0
if [ $# -eq 0 ]; then
  default_specs=1
  set -- \
    'fleet:fleet/hold-p99:lower' \
    'fleet:fleet/whole-run-p99:lower' \
    'fleet:fleet/p99-ratio-vs-baseline:lower' \
    'fleet:fleet/requests-ok:higher' \
    'fleet:fleet/requests-lost:lower' \
    'fleet:fleet/peak-shards:lower' \
    'bootstorm:1000/boots-per-sec:higher' \
    'bootstorm:10000/boots-per-sec:higher' \
    'bootstorm:10000/ttfr-p99:lower' \
    'bootstorm:10000/ok:higher' \
    'bootstorm:10000/domains-left:lower' \
    'dpath:base/ring/pkts:lower' \
    'dpath:base/ring/vcpu-ns-per-pkt:lower' \
    'dpath:base/netfront/vcpu-ns-per-pkt:lower' \
    'dpath:base/tcp/vcpu-ns-per-pkt:lower' \
    'dpath:base/app/vcpu-ns-per-pkt:lower' \
    'dpath:base/replies:higher' \
    'dpath:batch/ring/pkts:lower' \
    'dpath:batch/tcp/vcpu-ns-per-pkt:lower' \
    'dpath:batch/replies:higher' \
    'capture:goodput-capture-off:higher' \
    'capture:goodput-capture-on:higher' \
    'capture:overhead-pct:lower'
fi
# (dpath alloc-b-per-pkt is real GC allocation of the binary — compiler-
# version dependent, so snapshotted for reference but not gated by
# default, like the micro wall-clock numbers.)

# Pull "value" for one figure/metric out of a JSON-lines snapshot
# (the fixed one-object-per-line format bench/util.ml writes).
lookup() {
  # $1 = file, $2 = figure, $3 = metric
  awk -v fig="\"figure\": \"$2\"" -v met="\"metric\": \"$3\"" '
    index($0, fig) && index($0, met) {
      if (match($0, /"value": [-0-9.e+]+|"value": null/)) {
        v = substr($0, RSTART + 9, RLENGTH - 9)
        print v
        exit
      }
    }' "$1"
}

fails=0
checked=0

for spec in "$@"; do
  figure=${spec%%:*}
  rest=${spec#*:}
  metric=${rest%:*}
  direction=${rest##*:}
  case "$direction" in
  lower | higher) ;;
  *)
    echo "bench_gate: bad spec '$spec' (want figure:metric:lower|higher)" >&2
    exit 2
    ;;
  esac

  base=$(lookup "$baseline" "$figure" "$metric")
  cur=$(lookup "$current" "$figure" "$metric")

  if [ -z "$base" ] || [ "$base" = null ]; then
    if [ "$default_specs" = 1 ]; then
      echo "  -- $figure $metric not in baseline $baseline, skipped"
    else
      echo "bench_gate: $figure $metric missing from baseline $baseline" >&2
      fails=$((fails + 1))
    fi
    continue
  fi
  if [ -z "$cur" ] || [ "$cur" = null ]; then
    echo "bench_gate: $figure $metric missing from current $current" >&2
    fails=$((fails + 1))
    continue
  fi

  checked=$((checked + 1))
  verdict=$(awk -v b="$base" -v c="$cur" -v t="$tol" -v d="$direction" '
    BEGIN {
      if (d == "lower") {
        limit = (b >= 0) ? b * (1 + t) : b * (1 - t)
        bad = (c > limit)
      } else {
        limit = (b >= 0) ? b * (1 - t) : b * (1 + t)
        bad = (c < limit)
      }
      delta = (b != 0) ? 100 * (c - b) / b : 0
      printf "%s %.6g %+.1f%%", bad ? "FAIL" : "ok", limit, delta
    }')
  status=$(echo "$verdict" | cut -d' ' -f1)
  limit=$(echo "$verdict" | cut -d' ' -f2)
  delta=$(echo "$verdict" | cut -d' ' -f3)

  # The per-metric delta prints on pass as well as on failure, so a green
  # gate still shows how far each metric drifted from the baseline.
  if [ "$status" = FAIL ]; then
    echo "FAIL $figure $metric: $cur vs baseline $base ($delta, $direction is better, limit $limit)"
    fails=$((fails + 1))
  else
    echo "  ok $figure $metric: $cur (baseline $base, delta $delta, limit $limit)"
  fi
done

if [ "$fails" -gt 0 ]; then
  echo "bench_gate: $fails of $((checked + fails)) gated metrics regressed past ${tol} tolerance"
  exit 1
fi
echo "bench_gate: all $checked gated metrics within ${tol} tolerance"
